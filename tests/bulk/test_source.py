"""Shard discovery and streaming readers."""

from __future__ import annotations

import gzip
import json

import pytest

from repro.bulk import BulkError, discover_shards, read_urls
from repro.bulk.source import STDIN_SPEC, detect_format


class TestDetectFormat:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("urls.txt", ("text", False)),
            ("urls", ("text", False)),
            ("urls.txt.gz", ("text", True)),
            ("rows.jsonl", ("jsonl", False)),
            ("rows.ndjson.gz", ("jsonl", True)),
            ("table.csv", ("csv", False)),
            ("table.csv.gz", ("csv", True)),
        ],
    )
    def test_suffix_sniffing(self, name, expected):
        assert detect_format(name) == expected


class TestDiscover:
    def test_directory_is_sorted_deterministically(self, tmp_path):
        for name in ("b.txt", "a.txt", "c.txt.gz"):
            (tmp_path / name).write_text("http://x.de\n")
        (tmp_path / ".hidden").write_text("ignored")
        shards = discover_shards(tmp_path)
        assert [shard.shard_id for shard in shards] == [
            "a.txt", "b.txt", "c.txt.gz"
        ]
        assert shards[2].compressed

    def test_single_file(self, tmp_path):
        path = tmp_path / "urls.jsonl"
        path.write_text('{"url": "http://x.de"}\n')
        (shard,) = discover_shards(path)
        assert shard.format == "jsonl" and shard.shard_id == "urls.jsonl"

    def test_stdin_spec(self):
        (shard,) = discover_shards(STDIN_SPEC)
        assert shard.is_stdin and shard.format == "text"

    def test_missing_input_raises(self, tmp_path):
        with pytest.raises(BulkError, match="neither a file"):
            discover_shards(tmp_path / "nope")

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(BulkError, match="no shard files"):
            discover_shards(tmp_path)


class TestReadUrls:
    def test_text_skips_blank_lines(self, tmp_path):
        path = tmp_path / "u.txt"
        path.write_text("http://a.de\n\n  \nhttp://b.fr\n")
        (shard,) = discover_shards(path)
        assert list(read_urls(shard)) == ["http://a.de", "http://b.fr"]

    def test_gzip_text_roundtrip(self, tmp_path):
        path = tmp_path / "u.txt.gz"
        with gzip.open(path, "wt") as out:
            out.write("http://a.de\nhttp://b.fr\n")
        (shard,) = discover_shards(path)
        assert list(read_urls(shard)) == ["http://a.de", "http://b.fr"]

    def test_jsonl_field(self, tmp_path):
        path = tmp_path / "u.jsonl"
        rows = [{"page": "http://a.de", "rank": 1}, {"page": "http://b.fr"}]
        path.write_text("\n".join(json.dumps(row) for row in rows) + "\n")
        (shard,) = discover_shards(path)
        assert list(read_urls(shard, url_field="page")) == [
            "http://a.de", "http://b.fr"
        ]

    def test_jsonl_missing_field_raises(self, tmp_path):
        path = tmp_path / "u.jsonl"
        path.write_text('{"other": 1}\n')
        (shard,) = discover_shards(path)
        with pytest.raises(BulkError, match="no 'url' field"):
            list(read_urls(shard))

    @pytest.mark.parametrize(
        "payload", ['{"url": null}', '{"url": ["a", "b"]}', '{"url": 7}']
    )
    def test_jsonl_non_string_url_raises(self, tmp_path, payload):
        # Coercing with str() would silently score 'None' / a list repr.
        path = tmp_path / "u.jsonl"
        path.write_text(payload + "\n")
        (shard,) = discover_shards(path)
        with pytest.raises(BulkError, match="not a string"):
            list(read_urls(shard))

    def test_jsonl_invalid_json_names_row(self, tmp_path):
        path = tmp_path / "u.jsonl"
        path.write_text('{"url": "http://a.de"}\n{broken\n')
        (shard,) = discover_shards(path)
        with pytest.raises(BulkError, match="row 2: invalid JSON"):
            list(read_urls(shard))

    def test_csv_column_by_header(self, tmp_path):
        path = tmp_path / "u.csv"
        path.write_text("rank,url\n1,http://a.de\n2,http://b.fr\n")
        (shard,) = discover_shards(path)
        assert list(read_urls(shard)) == ["http://a.de", "http://b.fr"]

    def test_jsonl_empty_url_raises(self, tmp_path):
        path = tmp_path / "u.jsonl"
        path.write_text('{"url": ""}\n')
        (shard,) = discover_shards(path)
        with pytest.raises(BulkError, match="is empty"):
            list(read_urls(shard))

    def test_csv_empty_url_cell_raises(self, tmp_path):
        # Silent drops would desync bulk row counts from classify's.
        path = tmp_path / "u.csv"
        path.write_text("rank,url\n1,http://a.de\n2,\n")
        (shard,) = discover_shards(path)
        with pytest.raises(BulkError, match="row 3.*empty"):
            list(read_urls(shard))

    def test_csv_missing_column_raises(self, tmp_path):
        path = tmp_path / "u.csv"
        path.write_text("a,b\n1,2\n")
        (shard,) = discover_shards(path)
        with pytest.raises(BulkError, match="no 'url' column"):
            list(read_urls(shard))
