"""Row formats and the summary rollup."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.api.types import Prediction
from repro.bulk import BulkError, SummaryAccumulator, make_sink
from repro.languages import Language


@pytest.fixture()
def prediction():
    return Prediction(
        url="http://www.blumen.de/garten",
        best=Language.GERMAN,
        positives=(Language.GERMAN, Language.ENGLISH),
        scores={
            Language.GERMAN: 3.25,
            Language.ENGLISH: 0.5,
            Language.FRENCH: -1.0,
            Language.SPANISH: -2.0,
            Language.ITALIAN: -0.25,
        },
    )


class TestTsv:
    def test_rows_match_classify_exactly(self, prediction):
        sink = make_sink("tsv", provenance="NB/words@abc")
        assert sink.format(prediction) == prediction.tsv()
        assert sink.header() is None
        assert sink.suffix == ".tsv"


class TestJsonl:
    def test_row_carries_scores_and_provenance(self, prediction):
        sink = make_sink("jsonl", provenance="NB/words@abc123")
        row = json.loads(sink.format(prediction))
        assert row["url"] == prediction.url
        assert row["best"] == "de"
        assert row["positives"] == ["de", "en"]
        assert row["scores"]["de"] == 3.25  # bit-identical via JSON repr
        assert row["model"] == "NB/words@abc123"

    def test_no_best_serialises_null(self, prediction):
        sink = make_sink("jsonl")
        negative = Prediction(
            url=prediction.url, best=None, positives=(),
            scores=prediction.scores,
        )
        row = json.loads(sink.format(negative))
        assert row["best"] is None and row["positives"] == []
        assert "model" not in row


class TestCsv:
    def test_header_and_row_align(self, prediction):
        sink = make_sink("csv", provenance="NB/words@abc")
        header = next(csv.reader(io.StringIO(sink.header())))
        row = next(csv.reader(io.StringIO(sink.format(prediction))))
        assert header[:3] == ["url", "best", "positives"]
        assert header[-1] == "model"
        record = dict(zip(header, row))
        assert record["url"] == prediction.url
        assert record["best"] == "de"
        assert record["positives"] == "de,en"
        assert float(record["score_de"]) == 3.25
        assert record["model"] == "NB/words@abc"


class TestRegistry:
    def test_unknown_sink_raises_typed(self):
        with pytest.raises(BulkError, match="unknown sink"):
            make_sink("parquet")


class TestSummary:
    def test_observe_and_merge(self, prediction):
        left = SummaryAccumulator()
        left.observe(prediction)
        negative = Prediction(
            url="http://x.com", best=None, positives=(), scores={}
        )
        right = SummaryAccumulator()
        right.observe(negative)
        right.observe(prediction)
        left.merge(right)
        snapshot = left.snapshot()
        assert snapshot["rows"] == 3
        assert snapshot["best"] == {"de": 2, "und": 1}
        assert snapshot["positives"] == {"de": 2, "en": 2}
        rebuilt = SummaryAccumulator.from_snapshot(snapshot)
        assert rebuilt.snapshot() == snapshot


class TestSqlite:
    def test_file_contract_is_exactly_jsonl(self, prediction):
        sqlite_sink = make_sink("sqlite", provenance="NB/words@abc")
        jsonl_sink = make_sink("jsonl", provenance="NB/words@abc")
        assert sqlite_sink.suffix == jsonl_sink.suffix == ".jsonl"
        assert sqlite_sink.header() == jsonl_sink.header()
        assert sqlite_sink.format(prediction) == jsonl_sink.format(prediction)

    def test_only_the_sqlite_sink_asks_for_indexing(self):
        assert make_sink("sqlite").indexes_results is True
        for name in ("tsv", "jsonl", "csv"):
            assert make_sink(name).indexes_results is False
