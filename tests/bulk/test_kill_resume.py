"""The acceptance scenario: SIGKILL a bulk run mid-flight, resume it,
and get output byte-identical to a never-killed run.

The run is a real ``repro bulk`` CLI subprocess in its own process
group (so the kill takes the worker pool down with the parent, exactly
like an OOM-killer or a node reclaim would).  The corpus is sized so
the kill lands while shards are still pending; the manifest is polled
for the first committed shard before pulling the trigger.
"""

from __future__ import annotations

import gzip
import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro.bulk as bulk

#: URLs per shard; six shards.  Big enough that scoring takes a couple
#: of seconds — a wide-open window for the kill to land mid-run.
SHARDS = 6
URLS_PER_SHARD = 4000


@pytest.fixture(scope="module")
def big_corpus(tmp_path_factory):
    from repro.corpus.generator import UrlCorpusGenerator
    from repro.languages import LANGUAGES

    generator = UrlCorpusGenerator(seed=3)
    per_language = SHARDS * URLS_PER_SHARD // len(LANGUAGES)
    corpus = generator.generate_corpus(
        "odp", {language: per_language for language in LANGUAGES}
    )
    urls = [record.url for record in corpus]
    shard_dir = tmp_path_factory.mktemp("kill-corpus")
    for index in range(SHARDS):
        chunk = urls[index::SHARDS]
        with gzip.open(shard_dir / f"s{index}.txt.gz", "wt") as out:
            out.write("\n".join(chunk) + "\n")
    return shard_dir


def test_sigkill_then_resume_is_byte_identical(
    bulk_model, big_corpus, tmp_path
):
    model_path, _ = bulk_model
    out_dir = tmp_path / "run"
    manifest_path = out_dir / "manifest.json"
    env = dict(os.environ)
    src = str(os.path.join(os.path.dirname(bulk.__file__), "..", ".."))
    env["PYTHONPATH"] = os.path.normpath(src)
    command = [
        sys.executable, "-m", "repro.cli", "bulk",
        "--model", str(model_path), "--input", str(big_corpus),
        "--output", str(out_dir), "--workers", "2", "--quiet",
    ]
    process = subprocess.Popen(
        command, env=env, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        # Wait for the first committed shard, then SIGKILL the whole
        # process group — parent, pool workers, everything.
        deadline = time.time() + 120
        done = 0
        while time.time() < deadline:
            if process.poll() is not None:
                break  # finished before we could kill it (fast machine)
            try:
                manifest = json.loads(manifest_path.read_text())
            except (OSError, json.JSONDecodeError):
                manifest = {"shards": {}}
            done = sum(
                1 for entry in manifest["shards"].values()
                if entry.get("status") == "done"
            )
            if 1 <= done < SHARDS:
                os.killpg(process.pid, signal.SIGKILL)
                break
            time.sleep(0.01)
    finally:
        try:
            os.killpg(process.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        process.wait(timeout=30)

    manifest = json.loads(manifest_path.read_text())  # survived the kill
    completed_before = {
        shard_id: dict(entry)
        for shard_id, entry in manifest["shards"].items()
        if entry.get("status") == "done"
    }

    resumed = bulk.run(
        model_path, big_corpus, out_dir, workers=2, resume=True
    )
    assert resumed.shards_total == SHARDS
    assert resumed.rows_total == SHARDS * URLS_PER_SHARD
    # Completed shards were not re-scored: same committed checksums.
    manifest = json.loads(manifest_path.read_text())
    for shard_id, before in completed_before.items():
        assert manifest["shards"][shard_id]["sha256"] == before["sha256"]
    if process.returncode == -signal.SIGKILL:
        assert resumed.shards_scored == SHARDS - len(completed_before)

    # Byte parity with a run that was never killed.
    clean = bulk.run(
        model_path, big_corpus, tmp_path / "clean", workers=2
    )
    killed_bytes = b"".join(
        (out_dir / name).read_bytes() for name in resumed.outputs
    )
    clean_bytes = b"".join(
        (tmp_path / "clean" / name).read_bytes() for name in clean.outputs
    )
    assert killed_bytes == clean_bytes
