"""Tests for the language registry and ccTLD maps."""

import pytest

from repro.languages import (
    CCTLD_PLUS_EXTRA,
    CCTLDS,
    LANGUAGES,
    Language,
    all_known_cctlds,
    cctlds_for,
    language_for_cctld,
)


class TestLanguage:
    def test_five_languages(self):
        assert len(LANGUAGES) == 5
        assert LANGUAGES[0] is Language.ENGLISH

    def test_coerce_from_code(self):
        assert Language.coerce("de") is Language.GERMAN
        assert Language.coerce("it") is Language.ITALIAN

    def test_coerce_from_name(self):
        assert Language.coerce("German") is Language.GERMAN
        assert Language.coerce("spanish") is Language.SPANISH

    def test_coerce_identity(self):
        assert Language.coerce(Language.FRENCH) is Language.FRENCH

    def test_coerce_strips_whitespace(self):
        assert Language.coerce(" fr ") is Language.FRENCH

    def test_coerce_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown language"):
            Language.coerce("klingon")

    def test_display_names(self):
        assert Language.ENGLISH.display_name == "English"
        assert Language.SPANISH.display_name == "Spanish"


class TestCctldMap:
    """The Section 3.2 ccTLD lists, verbatim."""

    def test_french_cctlds(self):
        assert cctlds_for(Language.FRENCH) == ("fr", "tn", "dz", "mg")

    def test_german_cctlds(self):
        assert cctlds_for("de") == ("de", "at")

    def test_italian_single_cctld(self):
        assert cctlds_for(Language.ITALIAN) == ("it",)

    def test_spanish_cctlds(self):
        assert set(cctlds_for("es")) == {"es", "cl", "mx", "ar", "co", "pe", "ve"}

    def test_english_cctlds(self):
        assert set(cctlds_for("en")) == {"au", "ie", "nz", "us", "gov", "mil", "gb", "uk"}

    def test_language_for_cctld(self):
        assert language_for_cctld("de") is Language.GERMAN
        assert language_for_cctld("tn") is Language.FRENCH
        assert language_for_cctld("mx") is Language.SPANISH
        assert language_for_cctld("gov") is Language.ENGLISH

    def test_language_for_unknown_tld(self):
        assert language_for_cctld("ch") is None
        assert language_for_cctld("com") is None
        assert language_for_cctld("net") is None

    def test_language_for_cctld_normalises(self):
        assert language_for_cctld(".DE") is Language.GERMAN

    def test_cctld_plus_extra(self):
        assert CCTLD_PLUS_EXTRA == ("com", "org")

    def test_no_cctld_maps_to_two_languages(self):
        seen = {}
        for language, tlds in CCTLDS.items():
            for tld in tlds:
                assert tld not in seen, f"{tld} mapped twice"
                seen[tld] = language

    def test_all_known_cctlds_complete(self):
        known = all_known_cctlds()
        assert sum(len(tlds) for tlds in CCTLDS.values()) == len(known)
        assert "fr" in known and "uk" in known
