"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import random
import shutil
import tempfile
from pathlib import Path

import pytest

from repro.corpus.records import Corpus, LabeledUrl
from repro.datasets import build_datasets
from repro.languages import Language

#: Conservative cross-platform bound on AF_UNIX's ``sun_path`` (Linux
#: allows 107 usable bytes, the BSDs 103); kept lower so daemon sidecar
#: files derived from the socket path (``<socket>.pid``, ``<socket>.log``)
#: stay well clear too.
SUN_PATH_BUDGET = 92


@pytest.fixture
def sockpath(tmp_path):
    """Factory for Unix-socket paths that always fit ``sun_path``.

    pytest's ``tmp_path`` encodes the full test id, and parametrized
    ids can push ``<tmp_path>/x.sock`` past the AF_UNIX path limit —
    ``bind()`` then fails with a baffling ``OSError``.  Paths that fit
    stay inside ``tmp_path`` (auto-cleaned); long ones fall back to a
    short ``mkdtemp`` directory removed at teardown.
    """
    fallback_dirs: list[str] = []

    def make(name: str = "daemon.sock") -> Path:
        candidate = tmp_path / name
        if len(os.fsencode(candidate)) <= SUN_PATH_BUDGET:
            return candidate
        short = tempfile.mkdtemp(prefix="sk-")
        fallback_dirs.append(short)
        return Path(short) / name

    yield make
    for directory in fallback_dirs:
        shutil.rmtree(directory, ignore_errors=True)


@pytest.fixture(scope="session")
def toy_training():
    """A small, noisy but separable binary problem over sparse vectors.

    Positive vectors emphasise features f0/f1, negative ones f2/f3, with
    a shared neutral feature.  Deterministic.
    """
    rng = random.Random(7)
    vectors, labels = [], []
    for _ in range(60):
        vectors.append(
            {
                "f0": 1.0 + rng.random(),
                "f1": rng.random(),
                "shared": 1.0,
                **({"f2": 0.3} if rng.random() < 0.2 else {}),
            }
        )
        labels.append(True)
        vectors.append(
            {
                "f2": 1.0 + rng.random(),
                "f3": rng.random(),
                "shared": 1.0,
                **({"f0": 0.3} if rng.random() < 0.2 else {}),
            }
        )
        labels.append(False)
    return vectors, labels


@pytest.fixture(scope="session")
def toy_test():
    positive = {"f0": 1.2, "f1": 0.5, "shared": 1.0}
    negative = {"f2": 1.2, "f3": 0.5, "shared": 1.0}
    return positive, negative


@pytest.fixture(scope="session")
def small_bundle():
    """A small but realistic dataset bundle shared across tests."""
    return build_datasets(seed=11, scale=0.15, wc_scale=0.5)


@pytest.fixture(scope="session")
def small_train(small_bundle):
    return small_bundle.combined_train


def make_corpus(counts: dict[str, int], name: str = "toy") -> Corpus:
    """Tiny deterministic corpus with per-language hand-written URLs."""
    stems = {
        "en": "http://www.weather-news.com/story{i}.html",
        "de": "http://www.blumen-haus.de/garten{i}.html",
        "fr": "http://www.recherche.fr/produits{i}.html",
        "es": "http://www.noticias.es/paginas{i}.html",
        "it": "http://www.giornale.it/pagina{i}.html",
    }
    records = []
    for code, count in counts.items():
        for i in range(count):
            records.append(
                LabeledUrl(
                    url=stems[code].format(i=i),
                    language=Language.coerce(code),
                )
            )
    return Corpus(records=records, name=name)
