"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["generate"]).command == "generate"
        assert parser.parse_args(["train", "--out", "m.pkl"]).command == "train"
        assert parser.parse_args(
            ["classify", "--model", "m.pkl", "http://a.de"]
        ).command == "classify"
        assert parser.parse_args(
            ["evaluate", "--model", "m.pkl"]
        ).command == "evaluate"
        assert parser.parse_args(["experiment", "table8"]).command == "experiment"

    def test_serve_subcommands_parse(self):
        parser = build_parser()
        start = parser.parse_args(
            ["serve", "start", "--model", "m.urlmodel", "--socket", "s.sock",
             "--workers", "3", "--http", "0"]
        )
        assert (start.command, start.serve_command) == ("serve", "start")
        assert start.http == 0 and not start.foreground
        for name in ("stop", "status", "reload"):
            args = parser.parse_args(["serve", name, "--socket", "s.sock"])
            assert args.serve_command == name
        batch = parser.parse_args(
            ["serve", "batch", "--model", "m.urlmodel", "http://a.de"]
        )
        assert batch.serve_command == "batch"
        assert batch.urls == ["http://a.de"]

    def test_bulk_parses(self):
        parser = build_parser()
        args = parser.parse_args(
            ["bulk", "--model", "m.urlmodel", "--input", "shards/",
             "--output", "run/", "--workers", "4", "--sink", "jsonl",
             "--chunk-size", "128", "--url-field", "page", "--resume"]
        )
        assert args.command == "bulk"
        assert (args.workers, args.sink, args.chunk_size) == (4, "jsonl", 128)
        assert args.url_field == "page" and args.resume and not args.quiet

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
        with pytest.raises(SystemExit):  # serve requires a subcommand
            build_parser().parse_args(["serve"])

    def test_experiment_registry_complete(self):
        # 10 tables + 3 figures + selection + error-analysis drivers
        assert len(EXPERIMENTS) == 15


class TestCommands:
    def test_generate(self):
        out = io.StringIO()
        code = main(
            ["generate", "--profile", "ser", "--per-language", "3"], out=out
        )
        assert code == 0
        lines = out.getvalue().strip().splitlines()
        assert len(lines) == 15  # 3 per language x 5
        for line in lines:
            code_col, url = line.split("\t")
            assert code_col in ("en", "de", "fr", "es", "it")
            assert url.startswith("http://")

    def test_generate_deterministic(self):
        first, second = io.StringIO(), io.StringIO()
        main(["generate", "--per-language", "5", "--seed", "3"], out=first)
        main(["generate", "--per-language", "5", "--seed", "3"], out=second)
        assert first.getvalue() == second.getvalue()

    def test_train_classify_evaluate_roundtrip(self, tmp_path):
        model_path = tmp_path / "model.urlmodel"
        out = io.StringIO()
        code = main(
            ["train", "--out", str(model_path), "--scale", "0.08"], out=out
        )
        assert code == 0
        assert model_path.exists()
        assert "trained NB/words" in out.getvalue()

        # The default format is the mmap-able artifact, not a pickle.
        from repro.store import is_artifact

        assert is_artifact(model_path)

        out = io.StringIO()
        code = main(
            [
                "classify",
                "--model",
                str(model_path),
                "http://www.blumen.de/garten/strasse.html",
                "http://www.recherche.fr/produits",
            ],
            out=out,
        )
        assert code == 0
        lines = out.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert lines[0].split("\t")[0] == "de"
        assert lines[1].split("\t")[0] == "fr"

        out = io.StringIO()
        code = main(
            [
                "evaluate",
                "--model",
                str(model_path),
                "--test",
                "wc",
                "--scale",
                "0.08",
            ],
            out=out,
        )
        assert code == 0
        assert "average F:" in out.getvalue()

    def test_experiment_command(self):
        out = io.StringIO()
        code = main(["experiment", "table1", "--scale", "0.08"], out=out)
        assert code == 0
        assert "Table 1" in out.getvalue()

    def test_bulk_matches_classify_and_resumes(self, tmp_path):
        """`bulk` over a shard directory == `classify` over the same
        URLs, and a second `--resume` invocation is a no-op."""
        model_path = tmp_path / "model.urlmodel"
        main(["train", "--out", str(model_path), "--scale", "0.08"],
             out=io.StringIO())

        out = io.StringIO()
        main(["generate", "--per-language", "20", "--seed", "5"], out=out)
        urls = [line.split("\t")[1] for line in
                out.getvalue().strip().splitlines()]
        shard_dir = tmp_path / "shards"
        shard_dir.mkdir()
        (shard_dir / "a.txt").write_text("\n".join(urls[:40]) + "\n")
        (shard_dir / "b.txt").write_text("\n".join(urls[40:]) + "\n")

        reference = io.StringIO()
        code = main(["classify", "--model", str(model_path), *urls],
                    out=reference)
        assert code == 0

        out = io.StringIO()
        code = main(
            ["bulk", "--model", str(model_path), "--input", str(shard_dir),
             "--output", str(tmp_path / "run"), "--workers", "2"],
            out=out,
        )
        assert code == 0
        assert "scored 100 URLs" in out.getvalue()
        assert "manifest:" in out.getvalue()
        produced = "".join(
            (tmp_path / "run" / f"part-{index:05d}.tsv").read_text()
            for index in range(2)
        )
        assert produced == reference.getvalue()

        out = io.StringIO()
        code = main(
            ["bulk", "--model", str(model_path), "--input", str(shard_dir),
             "--output", str(tmp_path / "run"), "--resume", "--quiet"],
            out=out,
        )
        assert code == 0
        assert "scored 0 URLs" in out.getvalue()

    def test_bulk_without_resume_refuses_existing_run(self, tmp_path):
        model_path = tmp_path / "model.urlmodel"
        main(["train", "--out", str(model_path), "--scale", "0.08"],
             out=io.StringIO())
        shard_dir = tmp_path / "shards"
        shard_dir.mkdir()
        (shard_dir / "a.txt").write_text("http://www.blumen.de/garten\n")
        args = ["bulk", "--model", str(model_path), "--input",
                str(shard_dir), "--output", str(tmp_path / "run"), "--quiet"]
        assert main(args, out=io.StringIO()) == 0
        with pytest.raises(SystemExit, match="already records a run"):
            main(args, out=io.StringIO())


class TestModelFormats:
    def _train(self, tmp_path, *extra):
        model_path = tmp_path / "model.bin"
        out = io.StringIO()
        code = main(
            ["train", "--out", str(model_path), "--scale", "0.08", *extra],
            out=out,
        )
        assert code == 0
        return model_path, out.getvalue()

    def test_pickle_format_is_deprecated_fallback(self, tmp_path):
        from repro.store import is_artifact

        model_path, message = self._train(tmp_path, "--format", "pickle")
        assert not is_artifact(model_path)
        assert "deprecated pickle format" in message

        out = io.StringIO()
        code = main(
            ["classify", "--model", str(model_path), "http://www.blumen.de/haus"],
            out=out,
        )
        assert code == 0
        assert out.getvalue().split("\t")[0] == "de"

    def test_auto_format_falls_back_for_sparse_models(self, tmp_path):
        from repro.store import is_artifact

        model_path, message = self._train(tmp_path, "--backend", "sparse")
        assert not is_artifact(model_path)  # nothing to compile -> pickle
        assert "deprecated pickle format" in message

    def test_artifact_format_requires_compiled_backend(self, tmp_path):
        from repro.store import ArtifactError

        with pytest.raises(ArtifactError, match="no compiled backend"):
            self._train(tmp_path, "--backend", "sparse", "--format", "artifact")

    def test_serve_batch_matches_classify(self, tmp_path):
        model_path, _ = self._train(tmp_path)
        urls = [
            "http://www.blumen.de/garten/strasse.html",
            "http://www.recherche.fr/produits",
        ]
        classify_out, serve_out = io.StringIO(), io.StringIO()
        assert main(["classify", "--model", str(model_path), *urls],
                    out=classify_out) == 0
        assert main(
            ["serve", "batch", "--model", str(model_path), "--workers", "2",
             "--batch-size", "1", *urls],
            out=serve_out,
        ) == 0
        assert serve_out.getvalue() == classify_out.getvalue()

    def test_serve_rejects_pickles(self, tmp_path):
        model_path, _ = self._train(tmp_path, "--format", "pickle")
        for command in (
            ["serve", "batch", "--model", str(model_path), "http://a.de"],
            ["serve", "start", "--model", str(model_path),
             "--socket", str(tmp_path / "s.sock")],
        ):
            with pytest.raises(SystemExit, match="artifact"):
                main(command, out=io.StringIO())

    def test_serve_daemon_roundtrip(self, tmp_path):
        """start → classify through the repro:// handle → status → stop.

        The deep daemon behaviours (hot reload, oracle equivalence,
        error paths) live in tests/store/test_daemon.py; this covers
        the CLI wiring around them.
        """
        model_path, _ = self._train(tmp_path)
        socket_path = tmp_path / "cli.sock"
        out = io.StringIO()
        assert main(
            ["serve", "start", "--model", str(model_path),
             "--socket", str(socket_path), "--workers", "1"],
            out=out,
        ) == 0
        assert "serving" in out.getvalue()
        try:
            classify_out = io.StringIO()
            assert main(
                ["classify", "--model", f"repro://{socket_path}",
                 "http://www.blumen.de/garten/strasse.html"],
                out=classify_out,
            ) == 0
            assert classify_out.getvalue().split("\t")[0] == "de"

            status_out = io.StringIO()
            assert main(
                ["serve", "status", "--socket", str(socket_path)],
                out=status_out,
            ) == 0
            import json

            status = json.loads(status_out.getvalue())
            assert status["model"]["name"] == "NB/words"

            # --json: the same block, one compact machine-readable line.
            compact_out = io.StringIO()
            assert main(
                ["serve", "status", "--socket", str(socket_path), "--json"],
                out=compact_out,
            ) == 0
            compact_lines = compact_out.getvalue().strip().splitlines()
            assert len(compact_lines) == 1
            compact = json.loads(compact_lines[0])
            assert compact["model"] == status["model"]
            assert compact["pid"] == status["pid"]
        finally:
            stop_out = io.StringIO()
            assert main(
                ["serve", "stop", "--socket", str(socket_path)], out=stop_out
            ) == 0
            assert "stopped" in stop_out.getvalue()
        assert not socket_path.exists()

    def test_serve_status_without_daemon_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="serve start"):
            main(
                ["serve", "status", "--socket", str(tmp_path / "no.sock")],
                out=io.StringIO(),
            )
