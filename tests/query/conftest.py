"""Shared fixtures of the query-subsystem suite: one trained artifact,
one sharded corpus, one finished ``--sink sqlite`` bulk run, and one
fabricated six-figure-row index for the pagination/plan tests."""

from __future__ import annotations

import gzip
import json

import pytest

from repro.bulk import run
from repro.core.pipeline import LanguageIdentifier
from repro.query import create_result_db, insert_rows
from repro.query.ingest import _refresh_fingerprint
from repro.store import save_identifier


@pytest.fixture(scope="package")
def query_model(small_train, tmp_path_factory):
    """``(artifact_path, identifier)`` of a small compiled NB/words model."""
    identifier = LanguageIdentifier("words", "NB", seed=0).fit(
        small_train.subsample(0.4, seed=2)
    )
    path = tmp_path_factory.mktemp("query-model") / "nb.urlmodel"
    save_identifier(identifier, path)
    return path, identifier


@pytest.fixture(scope="package")
def query_corpus(small_bundle, tmp_path_factory):
    """``(shard_dir, urls)``: three gzipped text shards, uneven sizes."""
    urls = list(small_bundle.odp_test.urls[:90])
    shard_dir = tmp_path_factory.mktemp("query-corpus")
    for index, chunk in enumerate((urls[:40], urls[40:65], urls[65:])):
        with gzip.open(shard_dir / f"part-{index:02d}.txt.gz", "wt") as out:
            out.write("\n".join(chunk) + "\n")
    return shard_dir, urls


@pytest.fixture(scope="package")
def sqlite_run(query_model, query_corpus, tmp_path_factory):
    """``(run_dir, report)`` of one finished ``sink="sqlite"`` bulk run."""
    model_path, _ = query_model
    shard_dir, _ = query_corpus
    run_dir = tmp_path_factory.mktemp("sqlite-run")
    report = run(model_path, shard_dir, run_dir, sink="sqlite", workers=1)
    return run_dir, report


def fill_index(connection, *, shards=4, rows_per_shard=25_000):
    """Fabricate a large index through the real ingest insert path.

    Deterministic synthetic rows: five languages round-robin, scores
    descending within each language so keyset walks have plenty of
    distinct keys, plus duplicated scores across shards to exercise the
    rowid tiebreaker.
    """
    codes = ("de", "en", "es", "fr", "it")
    for ordinal in range(shards):
        shard_id = f"synthetic-{ordinal:02d}"

        def rows():
            for offset in range(rows_per_shard):
                code = codes[offset % len(codes)]
                score = round(1.0 + (offset % 9973) / 1000.0, 6)
                url = (
                    f"http://host{offset % 97}.example-{code}.test/"
                    f"s{ordinal}/page{offset}.html"
                )
                yield (
                    url, code, score, code,
                    json.dumps({code: score}, separators=(",", ":")),
                )

        with connection:
            insert_rows(connection, ordinal, shard_id, rows())
            connection.execute(
                "INSERT INTO shards(shard_id, ordinal, output, sha256, "
                "rows) VALUES (?, ?, ?, ?, ?)",
                (shard_id, ordinal, f"{shard_id}.jsonl",
                 f"{ordinal:064d}", rows_per_shard),
            )
            _refresh_fingerprint(connection)
    return connection


@pytest.fixture(scope="package")
def big_db(tmp_path_factory):
    """A 100k-row result database (path), built once per package."""
    path = tmp_path_factory.mktemp("big-index") / "results.sqlite"
    connection = create_result_db(path)
    fill_index(connection)
    connection.close()
    return path
