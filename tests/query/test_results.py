"""The query surface over a six-figure-row index.

The acceptance bar of this suite is the plan, not just the rows: every
row-returning and aggregating statement must be answered from an index
range scan — asserted with ``EXPLAIN QUERY PLAN`` against the *actual*
SQL the methods execute (captured via the connection trace hook), so
the assertion cannot drift from the implementation.
"""

from __future__ import annotations

import pytest

from repro.query import (
    MAX_PAGE_LIMIT,
    QueryError,
    open_index,
)

ROWS_TOTAL = 100_000
ROWS_PER_LANGUAGE = 20_000
CODES = ("de", "en", "es", "fr", "it")


@pytest.fixture()
def index(big_db):
    with open_index(big_db) as opened:
        yield opened


def traced_plans(index, operation):
    """Run ``operation`` and return the query plans of every statement
    it executed against the ``results`` table."""
    statements = []
    index.connection.set_trace_callback(statements.append)
    try:
        operation()
    finally:
        index.connection.set_trace_callback(None)
    plans = []
    for statement in statements:
        if "FROM results" not in statement:
            continue
        details = [
            row[-1]
            for row in index.connection.execute(
                "EXPLAIN QUERY PLAN " + statement
            )
        ]
        plans.append((statement, details))
    return plans


def assert_no_table_scan(plans):
    """A bare ``SCAN results`` (no index at all) is the failure mode;
    covering-index scans are how aggregates are supposed to look."""
    assert plans, "operation executed no statements over results"
    for statement, details in plans:
        for detail in details:
            if "SCAN results" in detail and "results_fts" not in detail:
                assert "INDEX" in detail, (
                    f"full table scan in {statement!r}: {details}"
                )


class TestQueryPlans:
    def test_per_language_page_is_a_covering_range_scan(self, index):
        plans = traced_plans(index, lambda: index.page("de", limit=10))
        assert_no_table_scan(plans)
        assert any(
            "INDEX idx_results_lang_score" in detail
            for _, details in plans for detail in details
        ), plans

    def test_cursored_page_stays_on_the_index(self, index):
        first = index.page("de", limit=10)
        plans = traced_plans(
            index, lambda: index.page("de", limit=10, cursor=first.next_cursor)
        )
        assert_no_table_scan(plans)
        assert any(
            "idx_results_lang_score" in detail
            for _, details in plans for detail in details
        ), plans

    def test_global_page_uses_the_score_index(self, index):
        plans = traced_plans(index, lambda: index.page(limit=10))
        assert_no_table_scan(plans)
        assert any(
            "INDEX idx_results_score" in detail
            for _, details in plans for detail in details
        ), plans

    def test_counts_never_touch_the_table(self, index):
        plans = traced_plans(index, lambda: index.counts())
        assert_no_table_scan(plans)
        assert all(
            "COVERING INDEX" in detail
            for _, details in plans for detail in details
        ), plans

    def test_lookups_ride_the_url_index(self, index):
        plans = traced_plans(
            index,
            lambda: (
                index.lookup("http://host0.example-de.test/s0/page0.html"),
                index.lookup("http://host17.", prefix=True, limit=20),
            ),
        )
        assert_no_table_scan(plans)
        assert all(
            any("idx_results_url" in detail for detail in details)
            for _, details in plans
        ), plans

    def test_histogram_scans_only_the_language_slice(self, index):
        plans = traced_plans(index, lambda: index.histogram("de", bins=10))
        assert_no_table_scan(plans)


class TestPagination:
    def test_full_walk_is_exhaustive_and_duplicate_free(self, index):
        seen = []
        cursor = None
        pages = 0
        while True:
            page = index.page("de", limit=1000, cursor=cursor)
            seen.extend(row["id"] for row in page.rows)
            pages += 1
            if page.next_cursor is None:
                break
            cursor = page.next_cursor
        assert len(seen) == ROWS_PER_LANGUAGE
        assert len(set(seen)) == ROWS_PER_LANGUAGE
        assert pages == ROWS_PER_LANGUAGE // 1000

    def test_pages_are_score_then_id_ordered(self, index):
        page = index.page("en", limit=500)
        keys = [(row["score"], row["id"]) for row in page.rows]
        assert keys == sorted(keys, reverse=True)

    def test_adjacent_pages_are_disjoint_and_contiguous(self, index):
        first = index.page(limit=100)
        second = index.page(limit=100, cursor=first.next_cursor)
        both = index.page(limit=200)
        assert [row["id"] for row in first.rows + second.rows] == [
            row["id"] for row in both.rows
        ]

    def test_limit_clamped_to_the_ceiling(self, index):
        page = index.page(limit=999_999)
        assert len(page.rows) == MAX_PAGE_LIMIT

    def test_final_page_has_no_cursor(self, index):
        # A slice smaller than one page: a single host's de rows.
        page = index.page("de", limit=MAX_PAGE_LIMIT)
        assert page.next_cursor is not None  # 20k rows > one page
        rows = index.lookup("http://host0.example-de.test/s0/", prefix=True)
        assert rows and all(
            row["url"].startswith("http://host0.example-de.test/s0/")
            for row in rows
        )

    def test_und_rows_cannot_be_score_listed(self, index):
        with pytest.raises(QueryError, match="carry no score"):
            index.page("und")
        with pytest.raises(QueryError, match="carry no score"):
            index.histogram("und")


class TestAggregates:
    def test_counts_split_evenly(self, index):
        assert index.counts() == {code: ROWS_PER_LANGUAGE for code in CODES}
        assert index.counts("fr") == {"fr": ROWS_PER_LANGUAGE}
        assert index.counts("und") == {"und": 0}

    def test_status_totals(self, index):
        status = index.status()
        assert status["rows"] == ROWS_TOTAL
        assert status["shards"] == 4
        assert status["fingerprint"] == index.fingerprint

    def test_histogram_bins_cover_every_scored_row(self, index):
        histogram = index.histogram(bins=8)
        assert histogram["rows"] == ROWS_TOTAL
        assert sum(bucket["count"] for bucket in histogram["bins"]) == ROWS_TOTAL
        assert histogram["lo"] == pytest.approx(1.0)
        assert histogram["hi"] == pytest.approx(1.0 + 9972 / 1000.0)
        assert len(histogram["bins"]) == 8

    def test_histogram_of_absent_language_is_empty(self, index):
        assert index.histogram("zz") == {
            "lo": None, "hi": None, "bins": [], "rows": 0,
        }

    def test_histogram_refuses_silly_bins(self, index):
        with pytest.raises(QueryError, match="bins"):
            index.histogram(bins=0)


class TestLookupAndSearch:
    def test_point_lookup_is_exact(self, index):
        url = "http://host3.example-fr.test/s2/page3.html"
        rows = index.lookup(url)
        assert [row["url"] for row in rows] == [url]
        assert rows[0]["best"] == "fr"

    def test_prefix_lookup_is_ordered_and_capped(self, index):
        rows = index.lookup("http://host42.", prefix=True, limit=25)
        assert len(rows) == 25
        urls = [row["url"] for row in rows]
        assert urls == sorted(urls)
        assert all(url.startswith("http://host42.") for url in urls)

    def test_search_finds_the_token_in_every_shard(self, index):
        page = index.search("page1234")
        assert len(page.rows) == 4  # once per synthetic shard
        assert all("page1234.html" in row["url"] for row in page.rows)

    def test_search_pagination_is_disjoint(self, index):
        first = index.search("de", limit=50)
        assert first.next_cursor is not None
        second = index.search("de", limit=50, cursor=first.next_cursor)
        first_ids = {row["id"] for row in first.rows}
        assert first_ids.isdisjoint(row["id"] for row in second.rows)

    def test_malformed_match_syntax_is_typed(self, index):
        with pytest.raises(QueryError, match="unusable search query"):
            index.search('"unbalanced')
