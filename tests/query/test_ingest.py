"""Ingestion semantics: idempotence, determinism, refusals."""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.query import (
    QueryError,
    create_result_db,
    index_fingerprint,
    index_run,
    ingest_shard,
    open_index,
)


def write_jsonl(path, rows):
    with open(path, "w", encoding="utf-8") as stream:
        for row in rows:
            stream.write(json.dumps(row, separators=(",", ":")) + "\n")


def jsonl_row(url, best, score):
    scores = {best: score} if best else {}
    return {
        "url": url,
        "best": best,
        "positives": [best] if best else [],
        "scores": scores,
    }


class TestIngestShard:
    def test_rows_land_with_deterministic_ids(self, tmp_path):
        shard = tmp_path / "a.jsonl"
        write_jsonl(shard, [
            jsonl_row("http://x.de/1", "de", 2.5),
            jsonl_row("http://x.fr/2", "fr", 1.5),
            jsonl_row("http://x.unknown/3", None, None),
        ])
        connection = create_result_db(tmp_path / "r.sqlite")
        try:
            rows = ingest_shard(
                connection, ordinal=3, shard_id="a",
                output_path=shard, sha256="abc",
            )
            assert rows == 3
            stride = 1 << 32
            got = connection.execute(
                "SELECT id, url, best, score FROM results ORDER BY id"
            ).fetchall()
            assert got == [
                (3 * stride + 0, "http://x.de/1", "de", 2.5),
                (3 * stride + 1, "http://x.fr/2", "fr", 1.5),
                (3 * stride + 2, "http://x.unknown/3", None, None),
            ]
        finally:
            connection.close()

    def test_same_sha_is_a_noop_stale_sha_replaces(self, tmp_path):
        shard = tmp_path / "a.jsonl"
        write_jsonl(shard, [jsonl_row("http://x.de/1", "de", 2.5)])
        connection = create_result_db(tmp_path / "r.sqlite")
        try:
            assert ingest_shard(
                connection, ordinal=0, shard_id="a",
                output_path=shard, sha256="v1",
            ) == 1
            assert ingest_shard(
                connection, ordinal=0, shard_id="a",
                output_path=shard, sha256="v1",
            ) == 0  # idempotent
            write_jsonl(shard, [
                jsonl_row("http://x.de/1", "de", 2.5),
                jsonl_row("http://x.de/2", "de", 2.0),
            ])
            assert ingest_shard(
                connection, ordinal=0, shard_id="a",
                output_path=shard, sha256="v2",
            ) == 2  # stale recording replaced wholesale
            assert connection.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()[0] == 2
        finally:
            connection.close()

    def test_fingerprint_is_order_independent(self, tmp_path):
        shard_a = tmp_path / "a.jsonl"
        shard_b = tmp_path / "b.jsonl"
        write_jsonl(shard_a, [jsonl_row("http://x.de/1", "de", 2.5)])
        write_jsonl(shard_b, [jsonl_row("http://x.fr/2", "fr", 1.5)])
        first = create_result_db(tmp_path / "one.sqlite")
        second = create_result_db(tmp_path / "two.sqlite")
        try:
            # Same salt so only ingest order differs.
            salt = first.execute(
                "SELECT value FROM meta WHERE key='salt'"
            ).fetchone()[0]
            with second:
                second.execute(
                    "UPDATE meta SET value=? WHERE key='salt'", (salt,)
                )
            for connection, order in (
                (first, (("a", shard_a, 0), ("b", shard_b, 1))),
                (second, (("b", shard_b, 1), ("a", shard_a, 0))),
            ):
                for shard_id, path, ordinal in order:
                    ingest_shard(
                        connection, ordinal=ordinal, shard_id=shard_id,
                        output_path=path, sha256=f"sha-{shard_id}",
                    )
            assert index_fingerprint(first) == index_fingerprint(second)
        finally:
            first.close()
            second.close()

    def test_rebuilt_database_gets_a_new_fingerprint(self, tmp_path):
        """Same rows, different build → different fingerprint (the
        per-creation salt), so replayed cursors are refused."""
        shard = tmp_path / "a.jsonl"
        write_jsonl(shard, [jsonl_row("http://x.de/1", "de", 2.5)])
        prints = []
        for name in ("one.sqlite", "two.sqlite"):
            connection = create_result_db(tmp_path / name)
            ingest_shard(
                connection, ordinal=0, shard_id="a",
                output_path=shard, sha256="same",
            )
            prints.append(index_fingerprint(connection))
            connection.close()
        assert prints[0] != prints[1]

    def test_malformed_jsonl_is_typed_with_location(self, tmp_path):
        shard = tmp_path / "a.jsonl"
        shard.write_text('{"url": "http://ok.de"}\nnot json\n')
        connection = create_result_db(tmp_path / "r.sqlite")
        try:
            with pytest.raises(QueryError, match=r"a\.jsonl:2"):
                ingest_shard(
                    connection, ordinal=0, shard_id="a",
                    output_path=shard, sha256="x",
                )
            # The failed transaction left nothing half-ingested.
            assert connection.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()[0] == 0
        finally:
            connection.close()

    def test_tsv_shards_are_refused_with_remedy(self, tmp_path):
        shard = tmp_path / "part-00000.tsv"
        shard.write_text("de\tde\thttp://x.de/1\n")
        connection = create_result_db(tmp_path / "r.sqlite")
        try:
            with pytest.raises(QueryError, match="--sink sqlite"):
                ingest_shard(
                    connection, ordinal=0, shard_id="a",
                    output_path=shard, sha256="x",
                )
        finally:
            connection.close()


class TestIndexRun:
    def test_reconcile_matches_run_and_is_idempotent(self, sqlite_run):
        run_dir, report = sqlite_run
        # The engine already ingested everything; reconcile is a no-op.
        again = index_run(run_dir)
        assert again.shards_ingested == 0
        assert again.shards_skipped == report.shards_total
        assert again.rows == report.rows_total

    def test_reconcile_heals_a_ripped_out_shard(self, sqlite_run):
        run_dir, report = sqlite_run
        manifest = json.loads((run_dir / "manifest.json").read_text())
        victim = manifest["order"][0]
        db = run_dir / "results.sqlite"
        connection = sqlite3.connect(db)
        with connection:
            connection.execute(
                "DELETE FROM results WHERE shard_id = ?", (victim,)
            )
            connection.execute(
                "DELETE FROM shards WHERE shard_id = ?", (victim,)
            )
        connection.close()
        healed = index_run(run_dir)
        assert healed.shards_ingested == 1
        assert healed.rows == report.rows_total

    def test_rebuild_changes_fingerprint_same_rows(self, sqlite_run):
        run_dir, report = sqlite_run
        with open_index(run_dir) as index:
            before = index.fingerprint
        rebuilt = index_run(run_dir, rebuild=True)
        assert rebuilt.rows == report.rows_total
        assert rebuilt.fingerprint != before

    def test_missing_manifest_is_typed(self, tmp_path):
        with pytest.raises(QueryError, match="nothing to index"):
            index_run(tmp_path)

    def test_model_meta_recorded(self, sqlite_run):
        run_dir, _ = sqlite_run
        manifest = json.loads((run_dir / "manifest.json").read_text())
        with open_index(run_dir) as index:
            assert index.model["checksum"] == manifest["model"]["checksum"]
