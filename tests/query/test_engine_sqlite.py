"""The sqlite sink through the bulk engine: byte parity with jsonl,
kill-window healing, and resume → identical database."""

from __future__ import annotations

import json
import sqlite3

import pytest

import repro.bulk as bulk
from repro.bulk import BulkError
from repro.query import open_index
from repro.query.ingest import _drop_shard, _refresh_fingerprint
from repro.testing.faults import FAULTS_ENV, FAULTS_STATE_ENV


def dump_results(db_path):
    connection = sqlite3.connect(db_path)
    try:
        return connection.execute(
            "SELECT id, url, best, score, positives, scores, shard_id "
            "FROM results ORDER BY id"
        ).fetchall()
    finally:
        connection.close()


class TestSqliteSinkRun:
    def test_shards_are_byte_identical_to_jsonl(
        self, query_model, query_corpus, sqlite_run, tmp_path
    ):
        """The file contract is exactly the jsonl sink's: same bytes,
        same sha256s — the database rides beside the shards, never
        instead of them."""
        model_path, _ = query_model
        shard_dir, _ = query_corpus
        run_dir, _ = sqlite_run
        jsonl_dir = tmp_path / "jsonl-run"
        bulk.run(model_path, shard_dir, jsonl_dir, sink="jsonl", workers=1)
        outputs = sorted(run_dir.glob("part-*.jsonl"))
        assert outputs, "sqlite sink writes .jsonl shard outputs"
        for output in outputs:
            assert output.read_bytes() == (jsonl_dir / output.name).read_bytes()

    def test_index_counts_match_run_summary(self, sqlite_run):
        run_dir, report = sqlite_run
        with open_index(run_dir) as index:
            assert index.counts() == report.summary["best"]
            assert index.status()["rows"] == report.rows_total

    def test_manifest_records_the_index(self, sqlite_run):
        run_dir, _ = sqlite_run
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["query_index"] == "results.sqlite"
        assert (run_dir / "results.sqlite").exists()

    def test_stdin_with_sqlite_sink_refused(self, query_model, tmp_path):
        model_path, _ = query_model
        with pytest.raises(BulkError, match="stdin"):
            bulk.run(model_path, "-", tmp_path / "out", sink="sqlite",
                     workers=0)


class TestKillAndResumeParity:
    def test_commit_fault_then_resume_yields_identical_database(
        self, query_model, query_corpus, sqlite_run, tmp_path, monkeypatch
    ):
        """A run that dies at shard commit and resumes converges on a
        database **identical** (ids, rows, bytes) to the uninterrupted
        run's — deterministic row ids plus manifest reconciliation."""
        model_path, _ = query_model
        shard_dir, _ = query_corpus
        reference_dir, _ = sqlite_run
        run_dir = tmp_path / "faulted"
        monkeypatch.setenv(FAULTS_ENV, "commit-error:times=1")
        monkeypatch.setenv(FAULTS_STATE_ENV, str(tmp_path / "fault-state"))
        with pytest.raises(BulkError):
            bulk.run(model_path, shard_dir, run_dir, sink="sqlite",
                     workers=1)
        report = bulk.run(model_path, shard_dir, run_dir, sink="sqlite",
                          workers=1, resume=True)
        assert report.shards_skipped + report.shards_scored == 3
        assert dump_results(run_dir / "results.sqlite") == dump_results(
            reference_dir / "results.sqlite"
        )

    def test_ingest_gap_heals_on_resume(
        self, query_model, query_corpus, sqlite_run, tmp_path
    ):
        """Simulate a SIGKILL in the window between a shard's manifest
        save and its ingest: the manifest says done, the database says
        nothing.  A resume (a no-op for scoring) reconciles the gap."""
        import shutil

        model_path, _ = query_model
        shard_dir, _ = query_corpus
        reference_dir, _ = sqlite_run
        run_dir = tmp_path / "gapped"
        shutil.copytree(reference_dir, run_dir)
        manifest = json.loads((run_dir / "manifest.json").read_text())
        victim = manifest["order"][-1]
        connection = sqlite3.connect(run_dir / "results.sqlite")
        with connection:
            _drop_shard(connection, victim)
            _refresh_fingerprint(connection)
        connection.close()
        report = bulk.run(model_path, shard_dir, run_dir, sink="sqlite",
                          workers=1, resume=True)
        assert report.shards_scored == 0  # nothing re-scored
        assert dump_results(run_dir / "results.sqlite") == dump_results(
            reference_dir / "results.sqlite"
        )

    def test_demoted_shard_reingests_to_identical_rows(
        self, query_model, query_corpus, sqlite_run, tmp_path
    ):
        """A committed output that vanishes is re-scored on resume and
        re-ingested; the converged database still equals the reference
        (same deterministic ids, same bytes)."""
        import shutil

        model_path, _ = query_model
        shard_dir, _ = query_corpus
        reference_dir, _ = sqlite_run
        run_dir = tmp_path / "demoted"
        shutil.copytree(reference_dir, run_dir)
        manifest = json.loads((run_dir / "manifest.json").read_text())
        victim = manifest["order"][0]
        (run_dir / manifest["shards"][victim]["output"]).unlink()
        report = bulk.run(model_path, shard_dir, run_dir, sink="sqlite",
                          workers=1, resume=True)
        assert report.shards_demoted == 1
        assert dump_results(run_dir / "results.sqlite") == dump_results(
            reference_dir / "results.sqlite"
        )
