"""The lineage index: which corpus trained which model, which model
scored which run — materialised from rollout stamps and run manifests."""

from __future__ import annotations

import shutil
import sqlite3

import pytest

from repro.core.pipeline import LanguageIdentifier
from repro.query import LineageError, build_lineage, open_lineage
from repro.store.registry import ModelStore


@pytest.fixture(scope="module")
def lineage_store(query_model, small_train, tmp_path_factory):
    """A store holding the run's scoring artifact byte-for-byte (same
    checksum, so lineage joins resolve) plus one model trained on a
    different corpus."""
    model_path, _ = query_model
    root = tmp_path_factory.mktemp("lineage-store")
    shutil.copy(model_path, root / "run-scorer.urlmodel")
    other = LanguageIdentifier("words", "NB", seed=1).fit(
        small_train.subsample(0.25, seed=5)
    )
    store = ModelStore(root)
    store.save(other, "other-model")
    return store


@pytest.fixture()
def lineage(lineage_store, sqlite_run, tmp_path):
    run_dir, _ = sqlite_run
    index = build_lineage(
        tmp_path / "lineage.sqlite",
        store_root=lineage_store.root,
        run_dirs=[run_dir],
    )
    yield index
    index.close()


class TestBuild:
    def test_models_mirror_the_store_listing(self, lineage, lineage_store):
        handles = {handle.checksum: handle for handle in lineage_store.list()}
        rows = lineage.models()
        assert {row["checksum"] for row in rows} == set(handles)
        for row in rows:
            handle = handles[row["checksum"]]
            assert row["name"] == handle.name
            assert row["train_corpus"] == handle.train_corpus
            assert row["created_at"] == handle.created_at

    def test_rebuild_upserts_instead_of_duplicating(
        self, lineage_store, sqlite_run, tmp_path
    ):
        run_dir, _ = sqlite_run
        db = tmp_path / "lineage.sqlite"
        first = build_lineage(db, store_root=lineage_store.root,
                              run_dirs=[run_dir])
        before = (len(first.models()), len(first.runs()))
        first.close()
        second = build_lineage(db, store_root=lineage_store.root,
                               run_dirs=[run_dir])
        try:
            assert (len(second.models()), len(second.runs())) == before
        finally:
            second.close()

    def test_run_row_carries_the_manifest_fingerprint(
        self, lineage, sqlite_run
    ):
        run_dir, report = sqlite_run
        (row,) = lineage.runs()
        assert row["run_dir"] == str(run_dir.resolve())
        assert row["sink"] == "sqlite"
        assert row["completed"] == 1
        assert row["shards"] == row["shards_done"] == report.shards_total
        assert row["rows"] == report.rows_total

    def test_unreadable_run_dir_is_named(self, tmp_path):
        with pytest.raises(LineageError, match="ghost-run"):
            build_lineage(
                tmp_path / "lineage.sqlite",
                run_dirs=[tmp_path / "ghost-run"],
            )


class TestQueries:
    def test_runs_of_model_by_checksum_prefix(self, lineage, sqlite_run):
        run_dir, _ = sqlite_run
        (row,) = lineage.runs()
        checksum = row["model_checksum"]
        assert checksum
        matches = lineage.runs_of_model(checksum[:12])
        assert [match["run_dir"] for match in matches] == [
            str(run_dir.resolve())
        ]
        assert lineage.runs_of_model("f" * 16) == []

    def test_runs_of_model_by_name(self, lineage):
        (row,) = lineage.runs()
        assert lineage.runs_of_model(row["model_name"]) == [row]
        assert lineage.runs_of_model("no-such-model") == []

    def test_models_of_corpus(self, lineage, lineage_store):
        scorer = lineage_store.describe("run-scorer")
        other = lineage_store.describe("other-model")
        assert scorer.train_corpus != other.train_corpus
        matches = lineage.models(corpus=scorer.train_corpus[:16])
        assert [row["checksum"] for row in matches] == [scorer.checksum]

    def test_run_model_joins_the_store_row(self, lineage, sqlite_run):
        run_dir, _ = sqlite_run
        row = lineage.run_model(run_dir)
        assert row is not None
        assert row["store_name"] == "run-scorer"
        assert row["algorithm"] == "NB"
        assert lineage.run_model(run_dir / "nowhere") is None


class TestOpen:
    def test_missing_index_points_at_the_builder(self, tmp_path):
        with pytest.raises(LineageError, match="query lineage"):
            open_lineage(tmp_path / "absent.sqlite")

    def test_directory_spec_resolves_conventional_name(
        self, lineage_store, tmp_path
    ):
        build_lineage(
            tmp_path / "lineage.sqlite", store_root=lineage_store.root
        ).close()
        with open_lineage(tmp_path) as index:
            assert len(index.models()) == 2

    def test_foreign_database_is_typed(self, tmp_path):
        path = tmp_path / "foreign.sqlite"
        connection = sqlite3.connect(path)
        connection.execute("CREATE TABLE unrelated (x)")
        connection.commit()
        connection.close()
        with pytest.raises(LineageError, match="not a lineage index"):
            open_lineage(path)
