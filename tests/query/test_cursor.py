"""Cursor grammar units, plus misuse drills run against **both** public
pagination surfaces — the ``repro query`` CLI and the daemon's
``/v1/query/*`` HTTP routes — so the refusal semantics cannot drift
apart."""

from __future__ import annotations

import io
import json
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.cli import main
from repro.query import (
    DEFAULT_PAGE_LIMIT,
    MAX_PAGE_LIMIT,
    CursorError,
    clamp_limit,
    decode_cursor,
    encode_cursor,
    index_run,
)
from repro.store.client import DaemonClient
from repro.store.daemon import start_daemon, stop_daemon


class TestClampLimit:
    def test_none_means_default(self):
        assert clamp_limit(None) == DEFAULT_PAGE_LIMIT

    def test_oversized_clamps_instead_of_failing(self):
        assert clamp_limit(10**9) == MAX_PAGE_LIMIT

    def test_strings_coerce(self):
        assert clamp_limit("25") == 25

    @pytest.mark.parametrize("bad", [0, -3, "zero", 2.5, True])
    def test_unusable_limits_are_typed(self, bad):
        with pytest.raises(CursorError, match="'limit'"):
            clamp_limit(bad)


class TestCursorGrammar:
    def test_round_trip_is_exact(self):
        score = 0.1 + 0.2  # a float that repr must round-trip exactly
        cursor = encode_cursor(score, 17, "abcdefabcdef")
        assert decode_cursor(cursor, "abcdefabcdef") == (score, 17)

    @pytest.mark.parametrize("cursor", [
        "", "just-noise", "1.5|2", "1.5|2|f|extra", "x|2|f", "1.5|y|f",
    ])
    def test_malformed_cursors_are_typed(self, cursor):
        with pytest.raises(CursorError, match="malformed|different index"):
            decode_cursor(cursor, "f")

    def test_foreign_fingerprint_is_refused_with_remedy(self):
        cursor = encode_cursor(1.5, 2, "aaaaaaaaaaaa")
        with pytest.raises(CursorError, match="restart pagination"):
            decode_cursor(cursor, "bbbbbbbbbbbb")


class SurfaceError(Exception):
    """A misuse refusal, normalised across CLI and HTTP."""


class CliSurface:
    """``repro query rows`` — refusals surface as SystemExit messages."""

    def __init__(self, run_dir):
        self.run_dir = run_dir

    def rows(self, *, limit=None, cursor=None):
        argv = ["query", "rows", "--db", str(self.run_dir), "--json"]
        if limit is not None:
            argv += ["--limit", str(limit)]
        if cursor is not None:
            argv += ["--cursor", cursor]
        out = io.StringIO()
        try:
            main(argv, out=out)
        except SystemExit as exit_:
            raise SurfaceError(str(exit_)) from None
        return json.loads(out.getvalue())


class HttpSurface:
    """``GET /v1/query/rows`` — refusals surface as 400 bad-request."""

    def __init__(self, port):
        self.port = port

    def rows(self, *, limit=None, cursor=None):
        query = []
        if limit is not None:
            query.append(f"limit={limit}")
        if cursor is not None:
            query.append("cursor=" + urllib.parse.quote(cursor, safe=""))
        url = f"http://127.0.0.1:{self.port}/v1/query/rows"
        if query:
            url += "?" + "&".join(query)
        try:
            with urllib.request.urlopen(url) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as error:
            body = json.loads(error.read())
            assert error.code == 400
            assert body["error"]["code"] == "bad-request"
            raise SurfaceError(body["error"]["message"]) from None


@pytest.fixture(params=["cli", "http"])
def surface(request, sqlite_run, query_model, sockpath):
    """One pagination surface over the shared sqlite bulk run."""
    run_dir, _ = sqlite_run
    if request.param == "cli":
        yield CliSurface(run_dir)
        return
    model_path, _ = query_model
    socket_path = sockpath("query.sock")
    start_daemon(
        model_path, socket_path, workers=1, http_port=0,
        query_db=run_dir,
    )
    try:
        with DaemonClient(socket_path) as client:
            port = client.status()["http_port"]
        yield HttpSurface(port)
    finally:
        stop_daemon(socket_path)


class TestCursorMisuse:
    def test_replayed_cursor_against_a_rebuilt_index_is_refused(
        self, surface, sqlite_run
    ):
        run_dir, _ = sqlite_run
        first = surface.rows(limit=5)
        assert first["next_cursor"] is not None
        index_run(run_dir, rebuild=True)  # same rows, new salt
        with pytest.raises(SurfaceError, match="different index build"):
            surface.rows(cursor=first["next_cursor"])
        # A cursor minted by the rebuilt index works again.
        fresh = surface.rows(limit=5)
        assert surface.rows(cursor=fresh["next_cursor"])["rows"]

    def test_tampered_fingerprint_is_refused(self, surface):
        first = surface.rows(limit=5)
        score, rowid, _ = first["next_cursor"].split("|")
        forged = f"{score}|{rowid}|{'0' * 12}"
        with pytest.raises(SurfaceError, match="different index build"):
            surface.rows(cursor=forged)

    def test_tampered_keyset_is_refused(self, surface):
        first = surface.rows(limit=5)
        score, rowid, fingerprint = first["next_cursor"].split("|")
        with pytest.raises(SurfaceError, match="malformed"):
            surface.rows(cursor=f"{score}x|{rowid}|{fingerprint}")

    def test_zero_and_negative_limits_are_refused(self, surface):
        with pytest.raises(SurfaceError, match="'limit'"):
            surface.rows(limit=0)
        with pytest.raises(SurfaceError, match="'limit'"):
            surface.rows(limit=-1)

    def test_oversized_limit_clamps_and_serves(self, surface, sqlite_run):
        _, report = sqlite_run
        scored = report.rows_total - report.summary["best"].get("und", 0)
        page = surface.rows(limit=10**6)
        assert len(page["rows"]) == min(scored, MAX_PAGE_LIMIT)

    def test_pages_tile_without_overlap(self, surface, sqlite_run):
        # The score listing covers every *scored* row exactly once
        # (undecided rows carry no score and live behind counts/lookup).
        _, report = sqlite_run
        scored = report.rows_total - report.summary["best"].get("und", 0)
        seen = []
        cursor = None
        while True:
            page = surface.rows(limit=7, **(
                {"cursor": cursor} if cursor else {}
            ))
            seen.extend(row["id"] for row in page["rows"])
            cursor = page["next_cursor"]
            if cursor is None:
                break
        assert len(seen) == scored
        assert len(set(seen)) == scored
