"""Result-database lifecycle: create, reopen, refuse foreign files."""

from __future__ import annotations

import sqlite3

import pytest

from repro.query import (
    RESULT_DB_NAME,
    SCHEMA_VERSION,
    IndexCorruptError,
    IndexMissingError,
    IndexVersionError,
    create_result_db,
    open_result_db,
    resolve_db_path,
)


class TestCreate:
    def test_fresh_database_carries_schema_and_salt(self, tmp_path):
        connection = create_result_db(tmp_path / "r.sqlite")
        try:
            meta = dict(connection.execute("SELECT key, value FROM meta"))
            assert meta["schema_version"] == str(SCHEMA_VERSION)
            assert len(meta["salt"]) == 16  # 8 random bytes, hex
            tables = {
                row[0]
                for row in connection.execute(
                    "SELECT name FROM sqlite_master WHERE type='table'"
                )
            }
            assert {"meta", "shards", "results", "results_fts"} <= tables
        finally:
            connection.close()

    def test_create_is_idempotent_and_keeps_the_salt(self, tmp_path):
        path = tmp_path / "r.sqlite"
        first = create_result_db(path)
        salt = first.execute(
            "SELECT value FROM meta WHERE key='salt'"
        ).fetchone()[0]
        first.close()
        second = create_result_db(path)
        try:
            assert second.execute(
                "SELECT value FROM meta WHERE key='salt'"
            ).fetchone()[0] == salt
        finally:
            second.close()

    def test_version_skew_refused(self, tmp_path):
        path = tmp_path / "r.sqlite"
        connection = create_result_db(path)
        with connection:
            connection.execute(
                "UPDATE meta SET value='999' WHERE key='schema_version'"
            )
        connection.close()
        with pytest.raises(IndexVersionError, match="999"):
            create_result_db(path)
        with pytest.raises(IndexVersionError):
            open_result_db(path)

    def test_wal_mode(self, tmp_path):
        connection = create_result_db(tmp_path / "r.sqlite")
        try:
            assert connection.execute(
                "PRAGMA journal_mode"
            ).fetchone()[0] == "wal"
        finally:
            connection.close()


class TestOpen:
    def test_missing_database_is_typed(self, tmp_path):
        with pytest.raises(IndexMissingError, match="no result index"):
            open_result_db(tmp_path / "absent.sqlite")

    def test_directory_spec_resolves_conventional_name(self, tmp_path):
        assert resolve_db_path(tmp_path) == tmp_path / RESULT_DB_NAME
        connection = create_result_db(tmp_path / RESULT_DB_NAME)
        connection.close()
        reopened = open_result_db(tmp_path)
        try:
            assert reopened.execute("SELECT 1").fetchone() == (1,)
        finally:
            reopened.close()

    def test_foreign_file_is_typed_corrupt(self, tmp_path):
        path = tmp_path / "not-an-index.sqlite"
        path.write_bytes(b"this is not a sqlite database at all\n" * 10)
        with pytest.raises(IndexCorruptError):
            open_result_db(path)

    def test_sqlite_but_not_ours_is_typed(self, tmp_path):
        path = tmp_path / "other.sqlite"
        foreign = sqlite3.connect(path)
        foreign.execute("CREATE TABLE unrelated (x)")
        foreign.commit()
        foreign.close()
        with pytest.raises(IndexCorruptError):
            open_result_db(path)

    def test_readonly_connection_refuses_writes(self, tmp_path):
        path = tmp_path / "r.sqlite"
        create_result_db(path).close()
        connection = open_result_db(path, readonly=True)
        try:
            with pytest.raises(sqlite3.OperationalError):
                connection.execute("INSERT INTO meta VALUES ('x', 'y')")
        finally:
            connection.close()
