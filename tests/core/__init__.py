"""Test package."""
