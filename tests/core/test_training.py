"""Tests for the training-pool orchestration helpers."""

from repro.core.training import TrainedPool, evaluate_grid, language_f_table
from repro.languages import LANGUAGES


class TestTrainedPool:
    def test_caches_fitted_identifiers(self, small_train):
        pool = TrainedPool(train=small_train)
        first = pool.get("NB", "words")
        second = pool.get("NB", "words")
        assert first is second

    def test_distinct_keys_distinct_models(self, small_train):
        pool = TrainedPool(train=small_train)
        assert pool.get("NB", "words") is not pool.get("RE", "words")

    def test_evaluate_run(self, small_train, small_bundle):
        pool = TrainedPool(train=small_train)
        run = pool.evaluate("NB", "words", small_bundle.odp_test, "ODP")
        assert run.identifier_name == "NB/words"
        assert run.test_name == "ODP"
        assert 0.0 <= run.average_f <= 1.0
        assert run.f_of("de") == run.per_language[LANGUAGES[1]].f_measure


class TestGridHelpers:
    def test_evaluate_grid(self, small_train, small_bundle):
        pool = TrainedPool(train=small_train)
        runs = evaluate_grid(
            pool,
            [("NB", "words")],
            {"ODP": small_bundle.odp_test, "WC": small_bundle.wc_test},
        )
        assert len(runs) == 2
        assert {run.test_name for run in runs} == {"ODP", "WC"}

    def test_language_f_table(self, small_train, small_bundle):
        pool = TrainedPool(train=small_train)
        run = pool.evaluate("NB", "words", small_bundle.odp_test, "ODP")
        cells = language_f_table({"ODP": run})
        assert len(cells) == 5
        assert ("German", "ODP") in cells
