"""Tests for the end-to-end LanguageIdentifier pipeline."""

import pytest

from repro.core.pipeline import (
    BASELINE_ALGORITHMS,
    FEATURE_SETS,
    LanguageIdentifier,
    make_extractor,
)
from repro.features.ngrams import TrigramFeatureExtractor
from repro.languages import LANGUAGES, Language


class TestMakeExtractor:
    def test_known_feature_sets(self):
        for name in FEATURE_SETS:
            assert make_extractor(name) is not None

    def test_kwargs_forwarded(self):
        extractor = make_extractor("trigrams", mode="raw")
        assert isinstance(extractor, TrigramFeatureExtractor)
        assert extractor.mode == "raw"

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown feature set"):
            make_extractor("bigrams")


@pytest.fixture(scope="module")
def nb_identifier(small_train):
    return LanguageIdentifier("words", "NB", seed=0).fit(small_train)


class TestLanguageIdentifier:
    def test_name(self):
        assert LanguageIdentifier("words", "NB").name == "NB/words"
        assert LanguageIdentifier(algorithm="ccTLD+").name == "ccTLD+"

    def test_five_binary_classifiers(self, nb_identifier):
        assert set(nb_identifier.classifiers) == set(LANGUAGES)

    def test_predict_languages_obvious_urls(self, nb_identifier):
        german = nb_identifier.predict_languages(
            "http://www.blumen.de/garten/strasse.html"
        )
        assert Language.GERMAN in german

    def test_decisions_align_with_predict(self, nb_identifier, small_bundle):
        urls = small_bundle.odp_test.urls[:20]
        decisions = nb_identifier.decisions(urls)
        for position, url in enumerate(urls):
            expected = nb_identifier.predict_languages(url)
            for language in LANGUAGES:
                assert decisions[language][position] == (language in expected)

    def test_scores_sign_consistency(self, nb_identifier):
        url = "http://www.blumen.de/garten.html"
        scores = nb_identifier.scores(url)
        predicted = nb_identifier.predict_languages(url)
        for language, score in scores.items():
            assert (score > 0) == (language in predicted)

    def test_classify_returns_best_or_none(self, nb_identifier):
        best = nb_identifier.classify("http://www.blumen.de/garten/haus.html")
        assert best is Language.GERMAN

    def test_evaluate_returns_all_languages(self, nb_identifier, small_bundle):
        metrics = nb_identifier.evaluate(small_bundle.odp_test)
        assert set(metrics) == set(LANGUAGES)
        for m in metrics.values():
            assert 0.0 <= m.f_measure <= 1.0

    def test_confusion_diagonal_is_recall(self, nb_identifier, small_bundle):
        test = small_bundle.odp_test
        matrix = nb_identifier.confusion(test)
        metrics = nb_identifier.evaluate(test)
        for language in LANGUAGES:
            assert matrix.recall(language) == pytest.approx(
                metrics[language].recall, abs=1e-9
            )

    def test_unfitted_raises(self):
        identifier = LanguageIdentifier("words", "NB")
        with pytest.raises(RuntimeError, match="before fit"):
            identifier.decisions(["http://a.de/"])

    def test_baselines_need_no_fit(self):
        for name in BASELINE_ALGORITHMS:
            identifier = LanguageIdentifier(algorithm=name)
            assert identifier.is_baseline
            languages = identifier.predict_languages("http://www.spiegel.de/")
            assert languages == {Language.GERMAN}

    def test_baseline_scores(self):
        identifier = LanguageIdentifier(algorithm="ccTLD")
        scores = identifier.scores("http://www.spiegel.de/")
        assert scores[Language.GERMAN] == 1.0
        assert scores[Language.FRENCH] == -1.0

    def test_content_training_requires_support(self, small_train):
        identifier = LanguageIdentifier("custom", "NB")
        contents = ["text"] * len(small_train)
        with pytest.raises(ValueError, match="content"):
            identifier.fit(small_train, contents=contents)

    def test_content_length_mismatch(self, small_train):
        identifier = LanguageIdentifier("words", "NB")
        with pytest.raises(ValueError, match="align"):
            identifier.fit(small_train, contents=["x"])

    @pytest.mark.parametrize("algorithm", ["NB", "RE", "ME", "DT", "kNN"])
    def test_all_algorithms_fit_and_predict(self, algorithm, small_train):
        feature_set = "custom" if algorithm == "DT" else "words"
        sub = small_train.subsample(0.4, seed=0)
        identifier = LanguageIdentifier(feature_set, algorithm, seed=0).fit(sub)
        result = identifier.predict_languages("http://www.blumen.de/garten")
        assert isinstance(result, set)

    def test_multiple_languages_possible(self, nb_identifier, small_bundle):
        """Section 4.2: a URL may be classified as several languages."""
        counts = [
            len(nb_identifier.predict_languages(url))
            for url in small_bundle.odp_test.urls[:300]
        ]
        assert any(c > 1 for c in counts) or any(c == 0 for c in counts)
