"""Tests for the validation-driven combination search (Section 5.6's
procedure)."""

import pytest

from repro.core.combination import search_best_combination
from repro.core.pipeline import LanguageIdentifier
from repro.evaluation.metrics import average_f, evaluate_binary
from repro.languages import LANGUAGES


@pytest.fixture(scope="module")
def fitted(small_train):
    keys = (("NB", "words"), ("RE", "words"), ("NB", "trigrams"))
    return {
        key: LanguageIdentifier(key[1], key[0], seed=0).fit(small_train)
        for key in keys
    }


class TestSearchBestCombination:
    def test_never_worse_than_best_single(self, fitted, small_bundle):
        validation = small_bundle.odp_test
        _, combined = search_best_combination(fitted, validation)
        merged = combined.evaluate(validation)

        decisions = {
            key: ident.decisions(validation.urls) for key, ident in fitted.items()
        }
        for language in LANGUAGES:
            best_single = max(
                evaluate_binary(
                    decisions[key][language],
                    [t == language for t in validation.labels],
                ).f_measure
                for key in fitted
            )
            assert merged[language].f_measure >= best_single - 1e-9

    def test_specs_reference_fitted_keys(self, fitted, small_bundle):
        specs, _ = search_best_combination(fitted, small_bundle.odp_test)
        assert set(specs) == set(LANGUAGES)
        for spec in specs.values():
            if spec is None:
                continue
            assert (spec.main_algorithm, spec.main_features) in fitted
            assert (spec.helper_algorithm, spec.helper_features) in fitted
            assert spec.mode in ("recall", "precision")

    def test_empty_fitted_raises(self, small_bundle):
        with pytest.raises(ValueError):
            search_best_combination({}, small_bundle.odp_test)

    def test_single_identifier_degenerates_gracefully(
        self, fitted, small_bundle
    ):
        only = {("NB", "words"): fitted[("NB", "words")]}
        specs, combined = search_best_combination(only, small_bundle.odp_test)
        # no pairs available -> every language keeps the single classifier
        assert all(spec is None for spec in specs.values())
        merged = combined.decisions(small_bundle.odp_test.urls[:20])
        single = fitted[("NB", "words")].decisions(
            small_bundle.odp_test.urls[:20]
        )
        assert merged == single

    def test_generalises_beyond_validation(self, fitted, small_bundle):
        """Selected on ODP, the combination should not collapse on SER."""
        _, combined = search_best_combination(fitted, small_bundle.odp_test)
        ser_f = average_f(list(combined.evaluate(small_bundle.ser_test).values()))
        best_single_ser = max(
            average_f(list(ident.evaluate(small_bundle.ser_test).values()))
            for ident in fitted.values()
        )
        assert ser_f > best_single_ser - 0.05
