"""Tests for classifier merging (Section 3.3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.combination import (
    BEST_COMBINATIONS,
    PRECISION,
    RECALL,
    CombinedIdentifier,
    CombinationSpec,
    merge_decisions,
)
from repro.core.pipeline import LanguageIdentifier
from repro.evaluation.metrics import evaluate_binary
from repro.languages import LANGUAGES, Language

BOOLS = st.lists(st.booleans(), min_size=1, max_size=50)


class TestMergeDecisions:
    def test_recall_is_or(self):
        assert merge_decisions([True, False, False], [False, False, True], RECALL) \
            == [True, False, True]

    def test_precision_is_and(self):
        assert merge_decisions([True, True, False], [True, False, True], PRECISION) \
            == [True, False, False]

    def test_invalid_mode(self):
        with pytest.raises(ValueError, match="mode"):
            merge_decisions([True], [True], "accuracy")

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            merge_decisions([True], [True, False], RECALL)

    @given(st.tuples(BOOLS, BOOLS).filter(lambda p: len(p[0]) == len(p[1])))
    def test_or_never_lowers_recall(self, pair):
        main, helper = pair
        merged = merge_decisions(main, helper, RECALL)
        assert all(m >= a for m, a in zip(merged, main))

    @given(st.tuples(BOOLS, BOOLS).filter(lambda p: len(p[0]) == len(p[1])))
    def test_and_never_raises_yes_count(self, pair):
        main, helper = pair
        merged = merge_decisions(main, helper, PRECISION)
        assert sum(merged) <= min(sum(main), sum(helper))

    @given(BOOLS)
    def test_self_merge_identity(self, decisions):
        assert merge_decisions(decisions, decisions, RECALL) == list(decisions)
        assert merge_decisions(decisions, decisions, PRECISION) == list(decisions)


class TestRecallPrecisionGuarantees:
    """The structural guarantees of Section 3.3 on real classifiers."""

    @pytest.fixture(scope="class")
    def fitted(self, small_train):
        nb = LanguageIdentifier("words", "NB", seed=0).fit(small_train)
        re = LanguageIdentifier("words", "RE", seed=0).fit(small_train)
        return nb, re

    def test_or_merge_recall_at_least_main(self, fitted, small_bundle):
        nb, re = fitted
        test = small_bundle.odp_test
        combined = CombinedIdentifier(nb, re, RECALL)
        merged = combined.evaluate(test)
        single = nb.evaluate(test)
        for language in LANGUAGES:
            assert merged[language].recall >= single[language].recall - 1e-9

    def test_and_merge_nsr_at_least_main(self, fitted, small_bundle):
        nb, re = fitted
        test = small_bundle.odp_test
        combined = CombinedIdentifier(nb, re, PRECISION)
        merged = combined.evaluate(test)
        single = nb.evaluate(test)
        for language in LANGUAGES:
            assert (
                merged[language].negative_success_ratio
                >= single[language].negative_success_ratio - 1e-9
            )

    def test_per_language_modes(self, fitted, small_bundle):
        nb, re = fitted
        modes = {Language.GERMAN: RECALL}  # others fall back to main
        combined = CombinedIdentifier(nb, re, modes)
        test = small_bundle.odp_test
        merged = combined.decisions(test.urls)
        main_only = nb.decisions(test.urls)
        assert merged[Language.FRENCH] == main_only[Language.FRENCH]
        assert merged[Language.GERMAN] != main_only[Language.GERMAN] or True

    def test_confusion_available(self, fitted, small_bundle):
        nb, re = fitted
        combined = CombinedIdentifier(nb, re, RECALL)
        matrix = combined.confusion(small_bundle.odp_test)
        assert matrix.row_counts


class TestBestCombinations:
    def test_recipes_cover_all_languages(self):
        assert set(BEST_COMBINATIONS) == set(LANGUAGES)

    def test_paper_recipes(self):
        english = BEST_COMBINATIONS[Language.ENGLISH]
        assert (english.main_algorithm, english.helper_algorithm) == ("ME", "RE")
        assert english.mode == RECALL
        spanish = BEST_COMBINATIONS[Language.SPANISH]
        assert spanish.mode == PRECISION
        assert spanish.main_features == "trigrams"

    def test_word_features_in_every_recipe(self):
        # Section 5.6: "in all combinations at least one algorithm used
        # word features".
        for spec in BEST_COMBINATIONS.values():
            assert "words" in (spec.main_features, spec.helper_features)

    def test_describe(self):
        spec = CombinationSpec("NB", "words", "RE", "trigrams", RECALL)
        assert spec.describe() == "NB/words OR RE/trigrams"
        spec = CombinationSpec("NB", "words", "RE", "trigrams", PRECISION)
        assert "AND" in spec.describe()
