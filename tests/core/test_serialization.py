"""Pickle round-trips: models must survive save/load (crawler deployments
train offline and serve elsewhere)."""

import pickle

import pytest

from repro.core.pipeline import LanguageIdentifier
from repro.languages import LANGUAGES


@pytest.mark.parametrize(
    "feature_set,algorithm",
    [("words", "NB"), ("trigrams", "RE"), ("custom", "DT")],
)
class TestPickleRoundTrip:
    def test_decisions_survive_pickle(
        self, feature_set, algorithm, small_train, small_bundle
    ):
        identifier = LanguageIdentifier(feature_set, algorithm, seed=0).fit(
            small_train.subsample(0.5, seed=1)
        )
        clone = pickle.loads(pickle.dumps(identifier))
        urls = small_bundle.odp_test.urls[:40]
        assert clone.decisions(urls) == identifier.decisions(urls)

    def test_metadata_survives(self, feature_set, algorithm, small_train):
        identifier = LanguageIdentifier(feature_set, algorithm, seed=0).fit(
            small_train.subsample(0.5, seed=1)
        )
        clone = pickle.loads(pickle.dumps(identifier))
        assert clone.name == identifier.name
        assert set(clone.classifiers) == set(LANGUAGES)


class TestBaselinePickle:
    def test_cctld_identifier(self):
        identifier = LanguageIdentifier(algorithm="ccTLD+")
        clone = pickle.loads(pickle.dumps(identifier))
        url = "http://www.wasserbett-test.com"
        assert clone.predict_languages(url) == identifier.predict_languages(url)
