"""The compiled batch backend of :class:`LanguageIdentifier`.

Backend selection, transparent fallback, batch-vs-sparse equivalence on
real URL corpora for every linear algorithm × feature set combination,
and pickling of compiled models.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.pipeline import CompiledIdentifier, LanguageIdentifier
from repro.languages import LANGUAGES

#: Every (algorithm, feature set) pair with a compiled lowering; the
#: Markov chain is trigram-only by construction.
COMPILABLE = [
    ("NB", "words"),
    ("NB", "trigrams"),
    ("NB", "custom"),
    ("RE", "words"),
    ("RE", "trigrams"),
    ("RE", "custom"),
    ("RO", "words"),
    ("RO", "trigrams"),
    ("RO", "custom"),
    ("MM", "trigrams"),
    ("ME", "words"),
    ("ME", "trigrams"),
    ("ME", "custom"),
]


def _fitted(algorithm, feature_set, small_train, backend="auto"):
    identifier = LanguageIdentifier(
        feature_set=feature_set, algorithm=algorithm, seed=0, backend=backend
    )
    return identifier.fit(small_train.subsample(0.6, seed=3))


@pytest.mark.parametrize("algorithm,feature_set", COMPILABLE)
class TestCompiledBackend:
    def test_auto_backend_compiles(self, algorithm, feature_set, small_train):
        identifier = _fitted(algorithm, feature_set, small_train)
        assert isinstance(identifier.compiled, CompiledIdentifier)

    def test_decisions_match_sparse_path(
        self, algorithm, feature_set, small_train, small_bundle
    ):
        identifier = _fitted(algorithm, feature_set, small_train)
        urls = small_bundle.odp_test.urls[:120]
        assert identifier.decisions(urls) == identifier._sparse_decisions(urls)

    def test_scores_match_sparse_path(
        self, algorithm, feature_set, small_train, small_bundle
    ):
        identifier = _fitted(algorithm, feature_set, small_train)
        urls = small_bundle.odp_test.urls[:60]
        batch_scores = identifier.scores_many(urls)
        for row, url in enumerate(urls):
            reference = identifier.scores(url)
            for language in LANGUAGES:
                assert batch_scores[language][row] == pytest.approx(
                    reference[language], abs=1e-9
                )

    def test_sparse_backend_opts_out(self, algorithm, feature_set, small_train):
        identifier = _fitted(
            algorithm, feature_set, small_train, backend="sparse"
        )
        assert identifier.compiled is None

    def test_compiled_survives_pickle(
        self, algorithm, feature_set, small_train, small_bundle
    ):
        identifier = _fitted(algorithm, feature_set, small_train)
        clone = pickle.loads(pickle.dumps(identifier))
        assert clone.compiled is not None
        urls = small_bundle.odp_test.urls[:40]
        assert clone.decisions(urls) == identifier.decisions(urls)


class TestLegacyPickles:
    def test_pre_backend_pickles_still_predict(self, small_train, small_bundle):
        """Models pickled before the compiled backend existed unpickle
        without ``backend``/``_compiled`` in their ``__dict__`` — the
        class-level defaults must keep them predicting."""
        identifier = _fitted("NB", "words", small_train)
        legacy = LanguageIdentifier.__new__(LanguageIdentifier)
        state = identifier.__dict__.copy()
        state.pop("_compiled")
        state.pop("backend")
        legacy.__dict__.update(state)
        urls = small_bundle.odp_test.urls[:20]
        assert legacy.compiled is None  # falls back to the sparse path
        assert legacy.decisions(urls) == identifier.decisions(urls)


class TestBackendSelection:
    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            LanguageIdentifier(backend="turbo")

    @pytest.mark.parametrize("algorithm", ["DT", "kNN"])
    def test_nonlinear_algorithms_fall_back(self, algorithm, small_train):
        identifier = _fitted(algorithm, "custom", small_train)
        assert identifier.compiled is None  # transparent sparse fallback
        urls = ["http://www.recherche.fr/produits1.html"]
        assert set(identifier.decisions(urls)) == set(LANGUAGES)

    def test_iis_maxent_falls_back(self, small_train):
        """Only the default (L-BFGS / gradient) MaxEnt trainers lower;
        the IIS variant scores over L1-normalised inputs and stays on
        the sparse reference path."""
        identifier = LanguageIdentifier(
            feature_set="words",
            algorithm="ME",
            seed=0,
            algorithm_kwargs={"method": "iis", "iterations": 3},
        ).fit(small_train.subsample(0.3, seed=5))
        assert identifier.compiled is None
        urls = ["http://www.recherche.fr/produits1.html"]
        assert set(identifier.decisions(urls)) == set(LANGUAGES)

    def test_compiled_backend_requires_linear_algorithm(self, small_train):
        identifier = LanguageIdentifier(
            feature_set="custom", algorithm="DT", backend="compiled"
        )
        with pytest.raises(ValueError, match="compiled"):
            identifier.fit(small_train.subsample(0.3, seed=5))

    def test_baselines_stay_sparse(self):
        identifier = LanguageIdentifier(algorithm="ccTLD+")
        assert identifier.compiled is None
        decisions = identifier.decisions(["http://www.zeitung.de/wetter"])
        assert decisions[next(iter(decisions))] is not None


class TestBatchEntryPoints:
    def test_classify_many_matches_classify(self, small_train, small_bundle):
        identifier = _fitted("NB", "words", small_train)
        urls = small_bundle.odp_test.urls[:50]
        assert identifier.classify_many(urls) == [
            identifier.classify(url) for url in urls
        ]

    def test_scores_many_sparse_path_matches(self, small_train, small_bundle):
        identifier = _fitted("NB", "words", small_train, backend="sparse")
        urls = small_bundle.odp_test.urls[:25]
        batch_scores = identifier.scores_many(urls)
        for row, url in enumerate(urls):
            reference = identifier.scores(url)
            for language in LANGUAGES:
                assert batch_scores[language][row] == reference[language]

    def test_row_cache_reuse_is_consistent(self, small_train, small_bundle):
        identifier = _fitted("NB", "words", small_train)
        urls = small_bundle.odp_test.urls[:30]
        first = identifier.decisions(urls)
        second = identifier.decisions(urls)  # served from the row memo
        assert first == second

    def test_evaluate_uses_batch_path(self, small_train, small_bundle):
        compiled = _fitted("RE", "words", small_train)
        sparse = _fitted("RE", "words", small_train, backend="sparse")
        test = small_bundle.odp_test
        compiled_metrics = compiled.evaluate(test)
        sparse_metrics = sparse.evaluate(test)
        for language in LANGUAGES:
            assert (
                compiled_metrics[language].f_measure
                == sparse_metrics[language].f_measure
            )

    def test_confusion_matches_sparse(self, small_train, small_bundle):
        compiled = _fitted("NB", "trigrams", small_train)
        sparse = _fitted("NB", "trigrams", small_train, backend="sparse")
        test = small_bundle.odp_test
        assert compiled.confusion(test).cells == sparse.confusion(test).cells
