"""Fused vs reference extraction backends sharing one process.

The per-URL interned-row memo of :class:`CompiledIdentifier` is keyed by
URL, and both extraction backends produce (provably equal) rows for the
same URL — so a single shared memo would *work* until the day a fast-path
bug let one backend poison the other's answers.  The backends therefore
own disjoint memos (and disjoint tokenizer caches), and these regression
tests alternate backends in one process to pin that isolation down,
along with the routing/fallback and pickling behaviour around it.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.pipeline import LanguageIdentifier
from repro.urls.tokenizer import (
    clear_token_cache,
    tokenize_bytes_cached,
    tokenize_cached,
)


@pytest.fixture(scope="module")
def fitted(small_train):
    identifier = LanguageIdentifier("words", "NB", seed=0)
    return identifier.fit(small_train.subsample(0.4, seed=3))


class TestBackendAlternation:
    def test_decisions_stable_across_switches(self, fitted, small_bundle):
        compiled = fitted.compiled
        urls = small_bundle.odp_test.urls[:60]
        assert compiled.extraction == "fused"
        fused_first = compiled.decisions(urls)
        compiled.extraction = "reference"
        reference = compiled.decisions(urls)
        compiled.extraction = "fused"
        fused_again = compiled.decisions(urls)
        assert fused_first == reference == fused_again

    def test_memos_stay_disjoint_per_backend(self, fitted, small_bundle):
        compiled = fitted.compiled
        compiled._row_caches["fused"].clear()
        compiled._row_caches["reference"].clear()
        first, second = (
            small_bundle.odp_test.urls[:30],
            small_bundle.odp_test.urls[30:60],
        )
        compiled.extraction = "fused"
        compiled.decisions(first)
        compiled.extraction = "reference"
        compiled.decisions(second)
        fused_keys = set(compiled._row_caches["fused"])
        reference_keys = set(compiled._row_caches["reference"])
        assert fused_keys == set(first)
        assert reference_keys == set(second)
        # The active-backend view (what the bench and the daemon status
        # consume) follows the switch.
        assert set(compiled._row_cache) == reference_keys
        compiled.extraction = "fused"
        assert set(compiled._row_cache) == fused_keys

    def test_cache_info_names_the_backend(self, fitted):
        compiled = fitted.compiled
        compiled.extraction = "fused"
        assert fitted.compiled.cache_info["extraction"] == "fused"
        compiled.extraction = "reference"
        assert fitted.compiled.cache_info["extraction"] == "reference"
        compiled.extraction = "fused"

    def test_tokenizer_memos_are_separate(self, fitted, small_bundle):
        compiled = fitted.compiled
        urls = [
            url + "/memo-isolation"
            for url in small_bundle.odp_test.urls[:20]
        ]
        clear_token_cache()
        compiled._row_caches["fused"].clear()
        compiled._row_caches["reference"].clear()
        compiled.extraction = "fused"
        compiled.decisions(urls)
        # The fused path never touches the string-token memo.
        assert tokenize_cached.cache_info().currsize == 0
        assert tokenize_bytes_cached.cache_info().currsize >= len(urls)
        compiled.extraction = "reference"
        compiled.decisions(urls)
        assert tokenize_cached.cache_info().currsize >= len(urls)
        compiled.extraction = "fused"

    def test_invalid_mode_rejected(self, fitted):
        with pytest.raises(ValueError, match="fused.*reference"):
            fitted.compiled.extraction = "vectorised"


class TestFallbackAndPickling:
    def test_custom_extractor_stays_on_reference(self, small_train):
        identifier = LanguageIdentifier("custom", "NB", seed=0).fit(
            small_train.subsample(0.4, seed=3)
        )
        compiled = identifier.compiled
        assert compiled.extraction == "reference"
        with pytest.raises(ValueError, match="no fused extraction plan"):
            compiled.extraction = "fused"

    def test_pickle_rebuilds_plan_and_empties_memos(
        self, fitted, small_bundle
    ):
        urls = small_bundle.odp_test.urls[:40]
        fitted.compiled.decisions(urls)
        clone = pickle.loads(pickle.dumps(fitted))
        compiled = clone.compiled
        assert compiled.extraction == "fused"
        assert compiled._fused_plan is not None
        assert not compiled._row_caches["fused"]
        assert not compiled._row_caches["reference"]
        assert clone.decisions(urls) == fitted.decisions(urls)

    def test_reference_preference_survives_pickle(self, fitted):
        fitted.compiled.extraction = "reference"
        clone = pickle.loads(pickle.dumps(fitted))
        assert clone.compiled.extraction == "reference"
        fitted.compiled.extraction = "fused"
