"""Tests for greedy forward feature selection."""

import random

from repro.algorithms.decision_tree import DecisionTreeClassifier
from repro.algorithms.naive_bayes import NaiveBayesClassifier
from repro.core.selection import forward_select


def synthetic_selection_problem(seed=0, n=120):
    """Label depends on "signal" (strongly) and "weak" (mildly);
    "noise" is irrelevant."""
    rng = random.Random(seed)
    vectors, labels = [], []
    for _ in range(n):
        label = rng.random() < 0.5
        vector = {
            "signal": 2.0 if label else 0.1,
            "weak": (1.0 if label else 0.5) + rng.random(),
            "noise": rng.random() * 3,
        }
        vectors.append(vector)
        labels.append(label)
    return vectors, labels


class TestForwardSelect:
    def test_picks_signal_first(self):
        train_v, train_l = synthetic_selection_problem(seed=1)
        valid_v, valid_l = synthetic_selection_problem(seed=2)
        result = forward_select(
            make_classifier=lambda: DecisionTreeClassifier(max_depth=3,
                                                           min_samples_leaf=2),
            candidate_features=["noise", "weak", "signal"],
            train_vectors=train_v,
            train_labels=train_l,
            validation_vectors=valid_v,
            validation_labels=valid_l,
            max_features=2,
        )
        assert result.features[0] == "signal"

    def test_respects_max_features(self):
        train_v, train_l = synthetic_selection_problem(seed=1)
        valid_v, valid_l = synthetic_selection_problem(seed=2)
        result = forward_select(
            make_classifier=lambda: DecisionTreeClassifier(max_depth=3,
                                                           min_samples_leaf=2),
            candidate_features=["signal", "weak", "noise"],
            train_vectors=train_v,
            train_labels=train_l,
            validation_vectors=valid_v,
            validation_labels=valid_l,
            max_features=1,
        )
        assert len(result.features) == 1

    def test_stops_without_improvement(self):
        train_v, train_l = synthetic_selection_problem(seed=3)
        valid_v, valid_l = synthetic_selection_problem(seed=4)
        result = forward_select(
            make_classifier=lambda: DecisionTreeClassifier(max_depth=3,
                                                           min_samples_leaf=2),
            candidate_features=["signal", "noise"],
            train_vectors=train_v,
            train_labels=train_l,
            validation_vectors=valid_v,
            validation_labels=valid_l,
            max_features=5,
            min_improvement=0.001,
        )
        # signal alone is near-perfect; noise cannot add .001 of F
        assert len(result.features) <= 2

    def test_monotone_f_measures(self):
        train_v, train_l = synthetic_selection_problem(seed=5)
        valid_v, valid_l = synthetic_selection_problem(seed=6)
        result = forward_select(
            make_classifier=lambda: DecisionTreeClassifier(max_depth=3,
                                                           min_samples_leaf=2),
            candidate_features=["signal", "weak", "noise"],
            train_vectors=train_v,
            train_labels=train_l,
            validation_vectors=valid_v,
            validation_labels=valid_l,
            max_features=3,
        )
        values = [step.f_measure for step in result.steps]
        assert values == sorted(values)

    def test_best_f_property(self):
        train_v, train_l = synthetic_selection_problem(seed=7)
        valid_v, valid_l = synthetic_selection_problem(seed=8)
        result = forward_select(
            make_classifier=lambda: DecisionTreeClassifier(max_depth=3,
                                                           min_samples_leaf=2),
            candidate_features=["signal"],
            train_vectors=train_v,
            train_labels=train_l,
            validation_vectors=valid_v,
            validation_labels=valid_l,
        )
        assert result.best_f == max(s.f_measure for s in result.steps)
