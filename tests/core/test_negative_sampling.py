"""Tests for the negative-sampling options of the pipeline (Section 4.1)."""

import pytest

from repro.core.pipeline import LanguageIdentifier
from repro.languages import LANGUAGES


class TestNegativeSampling:
    def test_invalid_option(self):
        with pytest.raises(ValueError, match="negative_sampling"):
            LanguageIdentifier("words", "NB", negative_sampling="half")

    def test_all_negatives_more_conservative(self, small_train, small_bundle):
        """Using all negatives dominates classifiers with "no" examples,
        depressing recall — the paper's exact warning."""
        balanced = LanguageIdentifier(
            "words", "NB", seed=0, negative_sampling="balanced"
        ).fit(small_train)
        all_negatives = LanguageIdentifier(
            "words", "NB", seed=0, negative_sampling="all"
        ).fit(small_train)

        test = small_bundle.odp_test
        balanced_metrics = balanced.evaluate(test)
        all_metrics = all_negatives.evaluate(test)

        balanced_recall = sum(m.recall for m in balanced_metrics.values()) / 5
        all_recall = sum(m.recall for m in all_metrics.values()) / 5
        assert all_recall < balanced_recall

        # ... but the conservative classifier gains negative success.
        balanced_nsr = sum(
            m.negative_success_ratio for m in balanced_metrics.values()
        ) / 5
        all_nsr = sum(
            m.negative_success_ratio for m in all_metrics.values()
        ) / 5
        assert all_nsr > balanced_nsr

    def test_all_mode_trains_every_language(self, small_train):
        identifier = LanguageIdentifier(
            "words", "NB", negative_sampling="all"
        ).fit(small_train)
        assert set(identifier.classifiers) == set(LANGUAGES)
