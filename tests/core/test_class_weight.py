"""Tests for the positive/negative weighting option (Section 3.2)."""

import pytest

from repro.core.pipeline import LanguageIdentifier
from repro.languages import LANGUAGES


class TestPositiveWeight:
    def test_validation(self):
        with pytest.raises(ValueError, match="positive_weight"):
            LanguageIdentifier("words", "NB", positive_weight=0)
        with pytest.raises(ValueError, match="positive_weight"):
            LanguageIdentifier("words", "NB", positive_weight=-1)
        with pytest.raises(ValueError, match="positive_weight"):
            LanguageIdentifier("words", "NB", positive_weight=1.5)

    def test_weight_one_is_default_behaviour(self, small_train, small_bundle):
        default = LanguageIdentifier("words", "NB", seed=0).fit(small_train)
        explicit = LanguageIdentifier(
            "words", "NB", seed=0, positive_weight=1
        ).fit(small_train)
        urls = small_bundle.odp_test.urls[:30]
        assert default.decisions(urls) == explicit.decisions(urls)

    def test_positive_weight_leans_recall(self, small_train, small_bundle):
        """Repeating positives makes every binary classifier more eager
        to say yes: recall up, negative success ratio down."""
        symmetric = LanguageIdentifier("words", "NB", seed=0).fit(small_train)
        recall_leaning = LanguageIdentifier(
            "words", "NB", seed=0, positive_weight=3
        ).fit(small_train)
        test = small_bundle.odp_test

        def averages(identifier):
            metrics = identifier.evaluate(test)
            recall = sum(m.recall for m in metrics.values()) / 5
            nsr = sum(m.negative_success_ratio for m in metrics.values()) / 5
            return recall, nsr

        base_recall, base_nsr = averages(symmetric)
        up_recall, up_nsr = averages(recall_leaning)
        assert up_recall >= base_recall
        assert up_nsr <= base_nsr

    def test_negative_weight_leans_precision(self, small_train, small_bundle):
        symmetric = LanguageIdentifier("words", "NB", seed=0).fit(small_train)
        precision_leaning = LanguageIdentifier(
            "words", "NB", seed=0, positive_weight=-3
        ).fit(small_train)
        test = small_bundle.odp_test

        def average_nsr(identifier):
            metrics = identifier.evaluate(test)
            return sum(m.negative_success_ratio for m in metrics.values()) / 5

        assert average_nsr(precision_leaning) >= average_nsr(symmetric)

    def test_all_languages_trained(self, small_train):
        identifier = LanguageIdentifier(
            "words", "NB", positive_weight=2
        ).fit(small_train)
        assert set(identifier.classifiers) == set(LANGUAGES)
