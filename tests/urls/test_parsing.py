"""Tests for structural URL parsing."""

from hypothesis import given
from hypothesis import strategies as st

from repro.urls.parsing import parse_url, registered_domain, tld_of


class TestParseUrl:
    def test_basic(self):
        parsed = parse_url("http://www.example.com/path/page.html")
        assert parsed.scheme == "http"
        assert parsed.host == "www.example.com"
        assert parsed.path == "/path/page.html"
        assert parsed.tld == "com"

    def test_paper_example_epfl(self):
        # The paper's own example: domain of ltaa.epfl.ch is epfl.ch.
        parsed = parse_url("http://ltaa.epfl.ch/algorithms.html")
        assert parsed.domain == "epfl.ch"

    def test_paper_example_cam(self):
        # ... and the domain of chu.cam.ac.uk is cam.ac.uk.
        parsed = parse_url("http://chu.cam.ac.uk/")
        assert parsed.domain == "cam.ac.uk"

    def test_no_scheme(self):
        parsed = parse_url("www.heise.de/newsticker")
        assert parsed.host == "www.heise.de"
        assert parsed.tld == "de"

    def test_https(self):
        assert parse_url("https://secure.example.org/").scheme == "https"

    def test_port_stripped(self):
        assert parse_url("http://example.com:8080/x").host == "example.com"

    def test_userinfo_stripped(self):
        assert parse_url("http://user:pw@example.com/").host == "example.com"

    def test_host_case_folded(self):
        assert parse_url("http://WWW.Example.COM/Page").host == "www.example.com"

    def test_path_case_preserved(self):
        assert parse_url("http://a.com/CamelCase").path == "/CamelCase"

    def test_empty_string(self):
        parsed = parse_url("")
        assert parsed.host == ""
        assert parsed.tld == ""
        assert parsed.domain == ""

    def test_bare_host(self):
        parsed = parse_url("http://splinder.com")
        assert parsed.path == ""
        assert parsed.domain == "splinder.com"

    def test_host_labels(self):
        parsed = parse_url("http://fr.search.yahoo.com/web")
        assert parsed.host_labels == ("fr", "search", "yahoo", "com")

    def test_before_after_slash(self):
        parsed = parse_url("http://www.a.de/b/c.html")
        assert parsed.before_slash == "www.a.de"
        assert parsed.after_slash == "/b/c.html"

    def test_trailing_dot_host(self):
        assert parse_url("http://example.com./x").tld == "com"

    def test_second_level_registrations(self):
        assert registered_domain("http://shop.foo.co.uk/") == "foo.co.uk"
        assert registered_domain("http://x.y.com.ar/") == "y.com.ar"
        assert registered_domain("http://plain.example.de/") == "example.de"

    def test_tld_of(self):
        assert tld_of("http://www.wasserbett-test.com") == "com"
        assert tld_of("http://viveka.math.hr/LDP/") == "hr"

    @given(st.text(max_size=80))
    def test_never_raises(self, text):
        parsed = parse_url(text)
        assert parsed.raw == text

    @given(
        st.lists(
            st.text(alphabet="abcdefghij", min_size=1, max_size=8),
            min_size=1,
            max_size=4,
        )
    )
    def test_tld_is_last_label(self, labels):
        url = "http://" + ".".join(labels) + "/x"
        assert parse_url(url).tld == labels[-1]
