"""Cache behaviour and immutability of parsed URLs."""

import pytest

from repro.urls.parsing import parse_url


class TestParseCache:
    def test_repeated_parse_identical(self):
        url = "http://www.example.de/path/page.html"
        first = parse_url(url)
        second = parse_url(url)
        # lru_cache: same object back for the same string
        assert first is second

    def test_parsed_url_frozen(self):
        parsed = parse_url("http://a.com/")
        with pytest.raises(AttributeError):
            parsed.host = "b.com"

    def test_distinct_urls_distinct_results(self):
        a = parse_url("http://a.com/")
        b = parse_url("http://b.com/")
        assert a.host != b.host
