"""Tests for trigram extraction (Section 3.1 rules)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.urls.trigrams import (
    raw_trigrams,
    token_trigrams,
    trigrams_of_tokens,
    url_trigrams,
)

LETTERS = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=2, max_size=15)


class TestTokenTrigrams:
    def test_paper_weather_example(self):
        # "the token weather gives rise to the trigrams ' we', 'wea',
        # 'eat', 'ath', 'the', 'her' and 'er '"
        assert token_trigrams("weather") == [
            " we", "wea", "eat", "ath", "the", "her", "er ",
        ]

    def test_two_letter_token(self):
        assert token_trigrams("de") == [" de", "de "]

    def test_single_letter_token_empty(self):
        assert token_trigrams("a") == []

    def test_empty_token(self):
        assert token_trigrams("") == []

    @given(LETTERS)
    def test_count_equals_token_length(self, token):
        # padding with one space each side: len(token) + 2 - 2 trigrams
        assert len(token_trigrams(token)) == len(token)

    @given(LETTERS)
    def test_boundary_trigrams_present(self, token):
        grams = token_trigrams(token)
        assert grams[0] == " " + token[:2]
        assert grams[-1] == token[-2:] + " "

    @given(LETTERS)
    def test_all_length_three(self, token):
        assert all(len(gram) == 3 for gram in token_trigrams(token))


class TestUrlTrigrams:
    def test_within_token_boundaries(self):
        # Tokens are separated; no trigram spans the '-' of hi-fly
        # (each side is a 2-letter token producing its own padded grams).
        grams = url_trigrams("http://www.hi-fly.de")
        assert "hi-" not in grams
        assert " hi" in grams and " fl" in grams

    def test_raw_mode_spans_tokens(self):
        # The rejected "second approach" does produce "hi-".
        assert "hi-" in raw_trigrams("http://www.hi-fly.de")

    def test_raw_mode_drops_scheme(self):
        grams = raw_trigrams("http://abc.de")
        assert "htt" not in grams
        assert grams[0] == "abc"

    def test_raw_mode_short_input(self):
        assert raw_trigrams("ab") == []

    def test_trigrams_of_tokens(self):
        assert trigrams_of_tokens(["de"]) == [" de", "de "]
        assert trigrams_of_tokens([]) == []

    def test_url_trigrams_match_tokens(self):
        from repro.urls.tokenizer import tokenize

        url = "http://www.jazzpages.com/NewYork/"
        expected = []
        for token in tokenize(url):
            expected.extend(token_trigrams(token))
        assert url_trigrams(url) == expected
