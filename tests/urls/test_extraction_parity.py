"""Property-based parity of the fused byte-level extraction path.

The fused path (byte tokeniser, base-27 trigram codes,
``FeatureIndexer.rows_fused``) claims *exact* equivalence with the
string-based reference for any input: same tokens, same trigrams, same
CSR arrays entry for entry, and — through the compiled backend — the
same ``decisions()`` as the sparse oracle.  These tests hold it to that
claim over hypothesis-generated text and the seeded adversarial URL set
(unicode/IDN hosts, percent-encoding, lone surrogates, mixed-case
schemes, query/fragment soup, degenerate lengths).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.pipeline import LanguageIdentifier
from repro.features.indexer import FeatureIndexer, build_fused_plan
from repro.features.ngrams import TrigramFeatureExtractor
from repro.features.words import WordFeatureExtractor
from repro.testing.urlgen import EDGE_CASE_URLS, adversarial_urls
from repro.urls.tokenizer import tokenize, tokenize_bytes
from repro.urls.trigrams import byte_url_trigrams, url_trigrams

#: Arbitrary unicode text — the parity contract is "any string", not
#: "well-formed URL".  (Lone surrogates are covered by the adversarial
#: edge cases below; hypothesis' default alphabet excludes them.)
ANY_TEXT = st.text(max_size=80)

ADVERSARIAL = adversarial_urls(300, seed=7)

#: Compiled (algorithm, feature set) pairs with a fused extraction plan.
FUSED_COMPILABLE = [
    ("NB", "words"),
    ("NB", "trigrams"),
    ("RE", "words"),
    ("RE", "trigrams"),
    ("RO", "words"),
    ("RO", "trigrams"),
    ("MM", "trigrams"),
    ("ME", "words"),
    ("ME", "trigrams"),
]


class TestTokenParity:
    @given(ANY_TEXT)
    def test_byte_tokens_match_reference(self, text):
        expected = [token.encode("ascii") for token in tokenize(text)]
        assert tokenize_bytes(text) == expected

    def test_adversarial_urls(self):
        for url in ADVERSARIAL:
            expected = [token.encode("ascii") for token in tokenize(url)]
            assert tokenize_bytes(url) == expected, url


class TestTrigramParity:
    @given(ANY_TEXT)
    def test_byte_trigrams_match_reference(self, text):
        assert byte_url_trigrams(text) == url_trigrams(text)

    def test_adversarial_urls(self):
        for url in ADVERSARIAL:
            assert byte_url_trigrams(url) == url_trigrams(url), url


class TestRowsFusedParity:
    """``rows_fused`` must emit the *identical* CsrBatch the reference
    two-step (extract dicts, then transform) builds — indices, data and
    residuals in the same first-occurrence order, so that downstream
    float summation order (and thus compiled scores) is bit-identical.
    """

    @pytest.mark.parametrize(
        "extractor", [WordFeatureExtractor(), TrigramFeatureExtractor()],
        ids=["words", "trigrams"],
    )
    def test_batches_identical(self, extractor):
        fit_urls = ADVERSARIAL[:120]
        indexer = FeatureIndexer().fit(extractor.extract_many(fit_urls))
        plan = build_fused_plan(extractor, indexer)
        assert plan is not None
        reference = indexer.transform(extractor.extract_many(ADVERSARIAL))
        fused = indexer.rows_fused(ADVERSARIAL, plan)
        assert np.array_equal(reference.indptr, fused.indptr)
        assert np.array_equal(reference.indices, fused.indices)
        assert np.array_equal(reference.data, fused.data)
        assert reference.residuals == fused.residuals

    def test_custom_extractors_have_no_plan(self):
        indexer = FeatureIndexer().fit([{"w:a": 1.0}])
        assert build_fused_plan(TrigramFeatureExtractor(mode="raw"), indexer) is None

        class Subclassed(WordFeatureExtractor):
            pass

        assert build_fused_plan(Subclassed(), indexer) is None


@pytest.mark.parametrize("algorithm,feature_set", FUSED_COMPILABLE)
class TestFusedDecisionParity:
    """Fused-path ``decisions()`` byte-identical to the sparse oracle."""

    def _fitted(self, algorithm, feature_set, small_train):
        identifier = LanguageIdentifier(
            feature_set=feature_set, algorithm=algorithm, seed=0
        )
        return identifier.fit(small_train.subsample(0.5, seed=3))

    def test_decisions_match_sparse_oracle(
        self, algorithm, feature_set, small_train, small_bundle
    ):
        identifier = self._fitted(algorithm, feature_set, small_train)
        compiled = identifier.compiled
        assert compiled is not None and compiled.extraction == "fused"
        urls = small_bundle.odp_test.urls[:80] + list(EDGE_CASE_URLS)
        assert identifier.decisions(urls) == identifier._sparse_decisions(urls)

    def test_fused_scores_equal_reference_extraction(
        self, algorithm, feature_set, small_train, small_bundle
    ):
        identifier = self._fitted(algorithm, feature_set, small_train)
        compiled = identifier.compiled
        urls = small_bundle.odp_test.urls[:60] + ADVERSARIAL[:60]
        fused = compiled.scores_matrix(urls)
        compiled.extraction = "reference"
        reference = compiled.scores_matrix(urls)
        # Same CSR entry order on both paths -> same summation order ->
        # bit-identical scores, not merely approximately equal.
        assert np.array_equal(fused, reference)
