"""Test package."""
