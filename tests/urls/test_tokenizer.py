"""Tests for URL tokenisation (Section 3.1 rules)."""

import re

from hypothesis import given
from hypothesis import strategies as st

from repro.urls.tokenizer import (
    MIN_TOKEN_LENGTH,
    SPECIAL_WORDS,
    iter_tokens,
    tokenize,
    tokenize_text,
)


class TestTokenize:
    def test_paper_example(self):
        # Section 3.1's worked example.
        url = "http://www.internetwordstats.com/africa2.htm"
        assert tokenize(url) == ["internetwordstats", "com", "africa"]

    def test_splits_at_non_letters(self):
        assert tokenize("http://hp2010.nhlbihin.net/oei_ss/clin5_10.htm") == [
            "hp", "nhlbihin", "net", "oei", "ss", "clin",
        ]

    def test_special_words_removed(self):
        for word in SPECIAL_WORDS:
            assert word not in tokenize(f"http://www.{word}.com/{word}/index.html")

    def test_short_tokens_removed(self):
        # single letters are dropped (length < 2)
        assert tokenize("http://a.b.com/c/d") == ["com"]

    def test_two_letter_tokens_kept(self):
        assert "de" in tokenize("http://de.wikipedia.org/wiki")

    def test_case_folding(self):
        assert tokenize("http://www.NewYork.COM/Page") == ["newyork", "com", "page"]

    def test_hyphenated_host_splits(self):
        assert tokenize("http://www.wasserbett-test.com") == [
            "wasserbett", "test", "com",
        ]

    def test_keep_special_flag(self):
        tokens = tokenize("http://www.example.com/index.html", keep_special=True)
        assert "www" in tokens and "index" in tokens and "html" in tokens

    def test_empty_url(self):
        assert tokenize("") == []

    def test_numbers_only(self):
        assert tokenize("http://123.456/789") == []

    def test_iter_tokens_matches_tokenize(self):
        url = "http://forum.mamboserver.com/archive/index.php/t-7062.html"
        assert list(iter_tokens(url)) == tokenize(url)

    def test_tokenize_text(self):
        assert tokenize_text("Der schnelle Fuchs, 42 mal!") == [
            "der", "schnelle", "fuchs", "mal",
        ]


class TestTokenizeProperties:
    @given(st.text(max_size=120))
    def test_tokens_are_lowercase_letter_runs(self, text):
        for token in tokenize(text):
            assert re.fullmatch(r"[a-z]+", token)
            assert len(token) >= MIN_TOKEN_LENGTH
            assert token not in SPECIAL_WORDS

    @given(st.text(max_size=120))
    def test_tokens_appear_in_lowered_input(self, text):
        lowered = text.lower()
        for token in tokenize(text):
            assert token in lowered

    @given(st.text(max_size=120))
    def test_idempotent_on_joined_tokens(self, text):
        tokens = tokenize(text)
        assert tokenize("/".join(tokens)) == tokens


class TestTokenizeCached:
    def test_matches_uncached(self):
        from repro.urls.tokenizer import tokenize_cached

        urls = [
            "http://www.internetwordstats.com/africa2.htm",
            "http://www.NewYork.COM/Page",
            "http://a.b.com/c/d",
            "",
        ]
        for url in urls:
            assert list(tokenize_cached(url)) == tokenize(url)

    def test_returns_shared_tuple(self):
        from repro.urls.tokenizer import tokenize_cached

        url = "http://www.recherche.fr/produits.html"
        first = tokenize_cached(url)
        assert isinstance(first, tuple)
        assert tokenize_cached(url) is first  # memo hit, same object

    def test_clear_token_cache(self):
        from repro.urls.tokenizer import clear_token_cache, tokenize_cached

        url = "http://www.giornale.it/pagina.html"
        before = tokenize_cached(url)
        clear_token_cache()
        after = tokenize_cached(url)
        assert after == before
        assert tokenize_cached.cache_info().currsize >= 1

    @given(st.text(max_size=80))
    def test_property_cached_equals_plain(self, url):
        from repro.urls.tokenizer import tokenize_cached

        assert list(tokenize_cached(url)) == tokenize(url)
