"""Tests for sparse-vector helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.features.base import (
    add_vectors,
    cosine_similarity,
    counts,
    dot,
    l1_normalize,
    l2_norm,
    scale_vector,
)

# Values are either exactly zero or comfortably normal floats; denormals
# (e.g. 5e-324) would underflow to 0.0 during normalisation and test
# floating-point arcana rather than our logic.
VECTORS = st.dictionaries(
    st.text(alphabet="abcxyz", min_size=1, max_size=5),
    st.one_of(
        st.just(0.0),
        st.floats(min_value=1e-6, max_value=100.0, allow_nan=False),
    ),
    max_size=8,
)


class TestL1Normalize:
    def test_basic(self):
        assert l1_normalize({"a": 1.0, "b": 3.0}) == {"a": 0.25, "b": 0.75}

    def test_empty(self):
        assert l1_normalize({}) == {}

    def test_zero_vector(self):
        assert l1_normalize({"a": 0.0}) == {}

    def test_drops_zero_entries(self):
        assert l1_normalize({"a": 2.0, "b": 0.0}) == {"a": 1.0}

    @given(VECTORS)
    def test_sums_to_one_or_empty(self, vector):
        normalized = l1_normalize(vector)
        if normalized:
            assert math.isclose(sum(normalized.values()), 1.0, rel_tol=1e-9)
        else:
            assert sum(vector.values()) == 0.0

    @given(VECTORS)
    def test_preserves_ratios(self, vector):
        normalized = l1_normalize(vector)
        positive = {k: v for k, v in vector.items() if v > 0}
        if len(positive) >= 2:
            (k1, v1), (k2, v2) = list(positive.items())[:2]
            if v2 > 0:
                assert math.isclose(
                    normalized[k1] / normalized[k2], v1 / v2, rel_tol=1e-9
                )


class TestVectorOps:
    def test_dot(self):
        assert dot({"a": 2.0, "b": 1.0}, {"a": 3.0, "c": 5.0}) == 6.0

    def test_dot_empty(self):
        assert dot({}, {"a": 1.0}) == 0.0

    @given(VECTORS, VECTORS)
    def test_dot_commutative(self, left, right):
        assert math.isclose(dot(left, right), dot(right, left), abs_tol=1e-9)

    def test_add_vectors(self):
        assert add_vectors({"a": 1.0}, {"a": 2.0, "b": 1.0}) == {"a": 3.0, "b": 1.0}

    def test_scale_vector(self):
        assert scale_vector({"a": 2.0}, 0.5) == {"a": 1.0}

    def test_l2_norm(self):
        assert l2_norm({"a": 3.0, "b": 4.0}) == pytest.approx(5.0)

    def test_cosine_identical(self):
        vector = {"a": 1.0, "b": 2.0}
        assert cosine_similarity(vector, vector) == pytest.approx(1.0)

    def test_cosine_orthogonal(self):
        assert cosine_similarity({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_cosine_zero_vector(self):
        assert cosine_similarity({}, {"a": 1.0}) == 0.0

    @given(VECTORS, VECTORS)
    def test_cosine_bounded(self, left, right):
        value = cosine_similarity(left, right)
        assert -1.0000001 <= value <= 1.0000001


class TestCounts:
    def test_counts(self):
        assert counts(["a", "b", "a"]) == {"a": 2.0, "b": 1.0}

    def test_counts_empty(self):
        assert counts([]) == {}
