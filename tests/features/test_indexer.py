"""FeatureIndexer interning and CSR batch assembly."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.features.indexer import FeatureIndexer

VECTORS = [
    {"w:alpha": 2.0, "w:beta": 1.0},
    {"w:beta": 3.0, "w:gamma": 1.0},
    {},
    {"w:alpha": 1.0},
]


@pytest.fixture()
def indexer():
    return FeatureIndexer().fit(VECTORS)


class TestInterning:
    def test_ids_are_dense_and_stable(self, indexer):
        assert len(indexer) == 3
        assert sorted(indexer.id_of(n) for n in ("w:alpha", "w:beta", "w:gamma")) == [0, 1, 2]
        assert indexer.name_of(indexer.id_of("w:beta")) == "w:beta"
        assert "w:alpha" in indexer
        assert "w:never" not in indexer
        assert indexer.id_of("w:never") is None

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            FeatureIndexer().transform(VECTORS)

    def test_names_array_matches_names(self, indexer):
        assert tuple(indexer.names_array.tolist()) == indexer.names

    def test_pickle_roundtrip(self, indexer):
        clone = pickle.loads(pickle.dumps(indexer))
        assert clone.names == indexer.names
        batch = clone.transform(VECTORS)
        assert batch.n_rows == len(VECTORS)


class TestCsrAssembly:
    def test_layout_roundtrips_vectors(self, indexer):
        batch = indexer.transform(VECTORS)
        assert batch.n_rows == 4
        assert batch.n_features == 3
        assert batch.indptr.tolist()[0] == 0
        assert batch.indptr.tolist()[-1] == len(batch.data)
        for row, vector in enumerate(VECTORS):
            ids, values = batch.row_slice(row)
            rebuilt = {indexer.name_of(i): v for i, v in zip(ids, values)}
            assert rebuilt == vector

    def test_empty_row_has_empty_slice(self, indexer):
        batch = indexer.transform(VECTORS)
        ids, values = batch.row_slice(2)
        assert len(ids) == 0 and len(values) == 0

    def test_oov_features_become_residuals(self, indexer):
        batch = indexer.transform([{"w:alpha": 1.0, "w:oov": 2.0}])
        assert batch.residuals == [(0, "w:oov", 2.0)]
        ids, _ = batch.row_slice(0)
        assert ids.tolist() == [indexer.id_of("w:alpha")]

    def test_nonpositive_values_are_dropped(self, indexer):
        batch = indexer.transform([{"w:alpha": 0.0, "w:beta": -1.0, "w:gamma": 2.0}])
        ids, values = batch.row_slice(0)
        assert ids.tolist() == [indexer.id_of("w:gamma")]
        assert values.tolist() == [2.0]
        assert batch.residuals == []

    def test_matmul_matches_dense_product(self, indexer):
        batch = indexer.transform(VECTORS)
        dense = np.array([[1.0, -2.0], [0.5, 1.0], [3.0, 0.0]])
        expected = np.zeros((4, 2))
        for row, vector in enumerate(VECTORS):
            for name, value in vector.items():
                expected[row] += value * dense[indexer.id_of(name)]
        assert np.allclose(batch.matmul(dense), expected)
        assert np.allclose(batch.matmul(dense[:, 0]), expected[:, 0])

    def test_row_sums_segments_correctly(self, indexer):
        batch = indexer.transform(VECTORS)
        totals = batch.row_sums(batch.data)
        assert totals.tolist() == [3.0, 4.0, 0.0, 1.0]

    def test_empty_batch(self, indexer):
        batch = indexer.transform([])
        assert batch.n_rows == 0
        assert batch.matmul(np.ones((3, 2))).shape == (0, 2)
