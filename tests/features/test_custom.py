"""Tests for the 74 custom-made features and the 15-feature subset."""

import pytest

from repro.features.custom import (
    ALL_FEATURE_NAMES,
    SELECTED_FEATURE_NAMES,
    CustomFeatureExtractor,
    describe_feature,
)
from repro.languages import Language


class TestFeatureInventory:
    def test_exactly_74_features(self):
        assert len(ALL_FEATURE_NAMES) == 74
        assert len(set(ALL_FEATURE_NAMES)) == 74

    def test_exactly_15_selected(self):
        assert len(SELECTED_FEATURE_NAMES) == 15

    def test_selected_families(self):
        # Per Section 3.1: ccTLD-before-slash, OpenOffice count, trained
        # count — each for all five languages.
        families = {name.split(":")[0] for name in SELECTED_FEATURE_NAMES}
        assert families == {"cc_host", "oo", "tr"}

    def test_selected_subset_of_all(self):
        assert set(SELECTED_FEATURE_NAMES) <= set(ALL_FEATURE_NAMES)


class TestSelectedExtraction:
    def test_cc_host_strict_tld(self):
        extractor = CustomFeatureExtractor()
        vector = extractor.extract("http://www.zeitung.de/artikel")
        assert vector.get("cc_host:de") == 1.0
        assert "cc_host:fr" not in vector

    def test_cc_host_subdomain(self):
        # Figure 1: "the TLD decision also considers URLs such as
        # http://de.wikipedia.org with an de before the first slash".
        vector = CustomFeatureExtractor().extract("http://de.wikipedia.org/wiki/X")
        assert vector.get("cc_host:de") == 1.0

    def test_cc_host_not_in_path(self):
        vector = CustomFeatureExtractor().extract("http://example.com/de/page")
        assert "cc_host:de" not in vector

    def test_openoffice_counts(self):
        vector = CustomFeatureExtractor().extract(
            "http://www.blumen.com/garten/haus"
        )
        assert vector.get("oo:de", 0) >= 3.0

    def test_trained_counts_require_fit(self):
        extractor = CustomFeatureExtractor()
        vector = extractor.extract("http://home.arcor.de/willi")
        assert "tr:de" not in vector  # dictionary empty before fit

    def test_trained_counts_after_fit(self):
        extractor = CustomFeatureExtractor()
        urls = [f"http://home.arcor.de/user{i}" for i in range(20)]
        urls += [f"http://galeon{i}.com/x" for i in range(5)]
        labels = [Language.GERMAN] * 20 + [Language.SPANISH] * 5
        extractor.fit(urls, labels)
        vector = extractor.extract("http://home.arcor.de/neu")
        assert vector.get("tr:de", 0) >= 1.0

    def test_only_selected_features_emitted(self):
        vector = CustomFeatureExtractor().extract(
            "http://www.blumen-haus.de/nummer-1/strasse.html"
        )
        assert set(vector) <= set(SELECTED_FEATURE_NAMES)


class TestFullExtraction:
    def _extract(self, url):
        return CustomFeatureExtractor(selected_only=False).extract(url)

    def test_strict_tld_vs_cc_host(self):
        vector = self._extract("http://de.wikipedia.org/wiki")
        assert "tld:de" not in vector  # strict TLD is org
        assert vector.get("cc_host:de") == 1.0
        assert vector.get("gtld:org") == 1.0

    def test_cc_in_path(self):
        vector = self._extract("http://example.com/fr/page")
        assert vector.get("cc_path:fr") == 1.0

    def test_generic_tlds(self):
        assert self._extract("http://a-b.com/")["gtld:com"] == 1.0
        assert self._extract("http://a-b.net/")["gtld:net"] == 1.0

    def test_hyphen_counters(self):
        vector = self._extract("http://blumen-haus.de/ein-zwei-drei")
        assert vector["hyphens"] == 3.0
        assert vector["hyphens_host"] == 1.0

    def test_shape_features(self):
        vector = self._extract("http://abc.de/xyz123")
        assert vector["n_tokens"] == 3.0
        assert vector["n_digits"] == 3.0
        assert vector["url_len"] == len("http://abc.de/xyz123")
        assert vector["avg_token_len"] == pytest.approx(8 / 3)  # abc, de, xyz

    def test_dictionary_variants_host_vs_path(self):
        vector = self._extract("http://blumen.de/recherche")
        assert vector.get("oo_host:de", 0) >= 1.0
        assert vector.get("oo_path:fr", 0) >= 1.0

    def test_city_counts(self):
        vector = self._extract("http://hotel-berlin.de/")
        assert vector.get("city:de", 0) >= 1.0

    def test_stopword_counts(self):
        vector = self._extract("http://example.com/der-und-die")
        assert vector.get("stop:de", 0) >= 3.0

    def test_all_values_within_inventory(self):
        vector = self._extract("http://www.blumen-haus.de/nummer/strasse.html")
        assert set(vector) <= set(ALL_FEATURE_NAMES)

    def test_zero_values_omitted(self):
        vector = self._extract("http://qqq.zz/")
        assert all(value != 0 for value in vector.values())


class TestDescribeFeature:
    def test_language_features(self):
        assert "German" in describe_feature("cc_host:de")
        assert "French" in describe_feature("oo:fr")
        assert "trained" in describe_feature("tr:it")

    def test_scalar_features(self):
        assert "hyphen" in describe_feature("hyphens").lower()
        assert describe_feature("gtld:com") == ".com top-level domain"

    def test_unknown_feature_passthrough(self):
        assert describe_feature("mystery") == "mystery"
