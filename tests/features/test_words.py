"""Tests for the words-as-features extractor."""

from repro.features.words import TokenSetExtractor, WordFeatureExtractor, word_vectors


class TestWordFeatureExtractor:
    def test_counts_tokens(self):
        extractor = WordFeatureExtractor()
        vector = extractor.extract("http://www.weather.com/weather/today")
        assert vector["w:weather"] == 2.0
        assert vector["w:com"] == 1.0
        assert vector["w:today"] == 1.0

    def test_prefix_namespacing(self):
        extractor = WordFeatureExtractor(prefix="x$")
        assert set(extractor.extract("http://ab.com")) == {"x$ab", "x$com"}

    def test_special_words_absent(self):
        vector = WordFeatureExtractor().extract("http://www.example.com/index.html")
        assert "w:www" not in vector and "w:index" not in vector

    def test_empty_url(self):
        assert WordFeatureExtractor().extract("") == {}

    def test_extract_many(self):
        vectors = WordFeatureExtractor().extract_many(["http://ab.com", "http://cd.de"])
        assert len(vectors) == 2
        assert "w:cd" in vectors[1]

    def test_extract_with_content_merges(self):
        extractor = WordFeatureExtractor()
        vector = extractor.extract_with_content(
            "http://blumen.de", "blumen und garten"
        )
        assert vector["w:blumen"] == 2.0  # URL + content occurrence
        assert vector["w:garten"] == 1.0
        assert vector["w:und"] == 1.0

    def test_word_vectors_helper(self):
        assert word_vectors(["http://ab.com"])[0] == {"w:ab": 1.0, "w:com": 1.0}


class TestTokenSetExtractor:
    def test_binary_values(self):
        vector = TokenSetExtractor().extract("http://ab.com/ab/ab")
        assert vector["w:ab"] == 1.0

    def test_same_support_as_words(self):
        url = "http://www.recherche.fr/produits/liste"
        words = WordFeatureExtractor().extract(url)
        binary = TokenSetExtractor().extract(url)
        assert set(words) == set(binary)
