"""Test package."""
