"""Tests for the trigram feature extractor."""

import pytest

from repro.features.ngrams import TrigramFeatureExtractor, trigram_vectors


class TestTrigramFeatureExtractor:
    def test_token_mode_counts(self):
        vector = TrigramFeatureExtractor().extract("http://thethe.com")
        # "thethe" -> " th", "the", "het", "eth", "thе"... count "the" twice
        assert vector["t:the"] == 2.0
        assert vector["t: th"] == 1.0

    def test_no_cross_token_trigrams(self):
        vector = TrigramFeatureExtractor().extract("http://www.hi-fly.de")
        assert "t:hi-" not in vector
        assert "t: hi" in vector

    def test_raw_mode_crosses_tokens(self):
        vector = TrigramFeatureExtractor(mode="raw").extract("http://www.hi-fly.de")
        assert "t:hi-" in vector

    def test_invalid_mode(self):
        with pytest.raises(ValueError, match="mode"):
            TrigramFeatureExtractor(mode="bigram")

    def test_prefix(self):
        vector = TrigramFeatureExtractor(prefix="g~").extract("http://abc.de")
        assert all(name.startswith("g~") for name in vector)

    def test_empty_url(self):
        assert TrigramFeatureExtractor().extract("") == {}

    def test_extract_with_content(self):
        extractor = TrigramFeatureExtractor()
        url_only = extractor.extract("http://blumen.de")
        combined = extractor.extract_with_content("http://blumen.de", "garten")
        assert combined["t: ga"] == 1.0
        assert combined["t: bl"] == url_only["t: bl"]

    def test_trigram_vectors_helper(self):
        vectors = trigram_vectors(["http://abc.com"], mode="token")
        assert "t:abc" in vectors[0]

    def test_token_and_raw_differ(self):
        url = "http://www.priceminister.com/navigation/default"
        token_mode = TrigramFeatureExtractor(mode="token").extract(url)
        raw_mode = TrigramFeatureExtractor(mode="raw").extract(url)
        assert token_mode != raw_mode
        # raw mode sees dots and slashes
        assert any("." in name or "/" in name for name in raw_mode)
