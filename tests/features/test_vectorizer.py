"""Tests for vocabulary and dense-matrix assembly."""

import numpy as np
import pytest

from repro.features.vectorizer import CountVectorizer, Vocabulary


class TestVocabulary:
    def test_add_and_lookup(self):
        vocab = Vocabulary()
        assert vocab.add("a") == 0
        assert vocab.add("b") == 1
        assert vocab.add("a") == 0  # idempotent
        assert vocab.index_of("b") == 1
        assert vocab.name_of(0) == "a"

    def test_contains_and_len(self):
        vocab = Vocabulary(["x", "y"])
        assert "x" in vocab and "z" not in vocab
        assert len(vocab) == 2

    def test_iteration_order(self):
        vocab = Vocabulary(["b", "a", "c"])
        assert list(vocab) == ["b", "a", "c"]
        assert vocab.names == ("b", "a", "c")

    def test_freeze(self):
        vocab = Vocabulary(["a"]).freeze()
        with pytest.raises(ValueError, match="frozen"):
            vocab.add("b")
        assert vocab.add("a") == 0  # existing names still resolvable

    def test_index_of_unknown(self):
        assert Vocabulary().index_of("missing") is None


class TestCountVectorizer:
    def test_fit_transform_shape(self):
        vectors = [{"a": 1.0, "b": 2.0}, {"b": 1.0}]
        matrix = CountVectorizer().fit_transform(vectors)
        assert matrix.shape == (2, 2)
        names = CountVectorizer().fit(vectors).vocabulary.names
        assert set(names) == {"a", "b"}

    def test_transform_values(self):
        vectorizer = CountVectorizer().fit([{"a": 1.0, "b": 2.0}])
        matrix = vectorizer.transform([{"a": 3.0}])
        column = vectorizer.vocabulary.index_of("a")
        assert matrix[0, column] == 3.0
        assert matrix.sum() == 3.0

    def test_unseen_features_dropped(self):
        vectorizer = CountVectorizer().fit([{"a": 1.0}])
        matrix = vectorizer.transform([{"zz": 9.0}])
        assert np.all(matrix == 0.0)

    def test_min_count_filters(self):
        vectors = [{"rare": 1.0, "common": 3.0}, {"common": 2.0}]
        vectorizer = CountVectorizer(min_count=3).fit(vectors)
        assert "common" in vectorizer.vocabulary
        assert "rare" not in vectorizer.vocabulary

    def test_min_count_validation(self):
        with pytest.raises(ValueError):
            CountVectorizer(min_count=0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            CountVectorizer().transform([{"a": 1.0}])

    def test_restrict(self):
        vectorizer = CountVectorizer().fit([{"a": 1.0}])
        assert vectorizer.restrict({"a": 2.0, "b": 5.0}) == {"a": 2.0}

    def test_restrict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            CountVectorizer().restrict({"a": 1.0})

    def test_deterministic_vocabulary_order(self):
        vectors = [{"b": 1.0}, {"a": 1.0}, {"c": 1.0}]
        first = CountVectorizer().fit(vectors).vocabulary.names
        second = CountVectorizer().fit(vectors).vocabulary.names
        assert first == second == ("a", "b", "c")  # sorted
