"""Tests for dictionary resources, especially the trained dictionary rule."""

import pytest

from repro.features.dictionaries import (
    LanguageDictionary,
    TrainedDictionary,
    city_dictionary,
    merged_dictionary,
    openoffice_dictionary,
)
from repro.languages import Language


class TestStaticDictionaries:
    def test_openoffice_membership(self):
        german = openoffice_dictionary("de")
        assert "strasse" in german
        assert "recherche" not in german

    def test_city_membership(self):
        assert "berlin" in city_dictionary("de")
        assert "berlin" not in city_dictionary("fr")

    def test_count_tokens_with_multiplicity(self):
        french = openoffice_dictionary("fr")
        assert french.count_tokens(["recherche", "recherche", "zzz"]) == 2

    def test_len(self):
        assert len(openoffice_dictionary("en")) > 100

    def test_merged(self):
        merged = merged_dictionary(
            "de", openoffice_dictionary("de"), city_dictionary("de")
        )
        assert "strasse" in merged and "berlin" in merged
        assert merged.source == "merged"


def _urls_with_token(token: str, count: int, suffix: str = "com") -> list[str]:
    return [f"http://{token}{i}x.{suffix}/{token}" for i in range(count)]


class TestTrainedDictionary:
    def _fit(self, urls_labels, **kwargs):
        urls = [u for u, _ in urls_labels]
        labels = [Language.coerce(l) for _, l in urls_labels]
        return TrainedDictionary(**kwargs).fit(urls, labels)

    def test_learns_frequent_pure_token(self):
        # "arcor" appears in many German URLs and only German URLs.
        pairs = [(f"http://home.arcor.de/user{i}", "de") for i in range(20)]
        pairs += [(f"http://galeon.com/p{i}", "es") for i in range(20)]
        trained = self._fit(pairs, min_document_count=3)
        assert "arcor" in trained.dictionary("de")
        assert "galeon" in trained.dictionary("es")
        assert "arcor" not in trained.dictionary("es")

    def test_purity_filter(self):
        # token "mixed" appears half in German, half in French -> purity .5
        pairs = [(f"http://mixed.de/a{i}", "de") for i in range(10)]
        pairs += [(f"http://mixed.fr/b{i}", "fr") for i in range(10)]
        trained = self._fit(pairs, min_document_count=3)
        assert "mixed" not in trained.dictionary("de")
        assert "mixed" not in trained.dictionary("fr")

    def test_eighty_percent_purity_boundary(self):
        # 16 German + 4 French occurrences = exactly 80% purity -> included.
        pairs = [(f"http://edge.de/a{i}", "de") for i in range(16)]
        pairs += [(f"http://edge.fr/b{i}", "fr") for i in range(4)]
        trained = self._fit(pairs, min_document_count=3)
        assert "edge" in trained.dictionary("de")

    def test_min_token_length(self):
        pairs = [(f"http://ab.de/page{i}", "de") for i in range(20)]
        trained = self._fit(pairs, min_document_count=3)
        assert "ab" not in trained.dictionary("de")  # length 2 < 3

    def test_document_count_floor(self):
        pairs = [(f"http://seldom.de/x", "de")] * 2
        pairs += [(f"http://haus{i}.de/y", "de") for i in range(30)]
        trained = self._fit(pairs, min_document_count=5)
        assert "seldom" not in trained.dictionary("de")

    def test_presence_not_multiplicity(self):
        # One URL repeating a token 10 times counts as ONE document.
        pairs = [("http://spam.de/spam/spam/spam/spam", "de")]
        pairs += [(f"http://other{i}.de/", "de") for i in range(30)]
        trained = self._fit(pairs, min_document_count=2)
        assert "spam" not in trained.dictionary("de")

    def test_relative_threshold_dominates_at_scale(self):
        trained = TrainedDictionary(
            min_url_fraction=0.1, min_document_count=1
        )
        urls = [f"http://unique{i}.de/" for i in range(10)]
        urls += ["http://popular.de/"] * 10
        labels = [Language.GERMAN] * 20
        trained.fit(urls, labels)
        # popular: 10/20 = 50% >= 10%; unique tokens: 1/20 = 5% < 10%
        assert "popular" in trained.dictionary("de")
        assert "unique0x" not in trained.dictionary("de")

    def test_count_tokens(self):
        pairs = [(f"http://home.arcor.de/user{i}", "de") for i in range(20)]
        trained = self._fit(pairs, min_document_count=3)
        assert trained.count_tokens("de", ["arcor", "arcor", "zzz"]) == 2

    def test_unfitted_is_empty(self):
        trained = TrainedDictionary()
        assert len(trained.dictionary("de")) == 0
        assert trained.count_tokens("de", ["haus"]) == 0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            TrainedDictionary().fit(["http://a.de"], [])

    def test_dictionary_source_tag(self):
        assert TrainedDictionary().dictionary("fr").source == "trained"
