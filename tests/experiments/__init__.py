"""Test package."""
