"""Smoke + shape tests for every table/figure driver on a small context.

Each driver must run end-to-end and reproduce the *qualitative* claim of
its table; the full-scale quantitative comparison lives in benchmarks/.
"""

import pytest

from repro.experiments import ExperimentContext
from repro.experiments import (
    figure1_tree,
    figure2_training_sweep,
    figure3_domain_memo,
    selection_15,
    table1_datasets,
    table2_human,
    table3_human_confusion,
    table4_cctld,
    table5_cctld_confusion,
    table6_nb_confusion,
    table7_full_grid,
    table8_nb_words,
    table9_combinations,
    table10_content,
)
from repro.languages import Language


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(seed=5, scale=0.12, wc_scale=0.5)


class TestTableDrivers:
    def test_table1(self, context):
        report = table1_datasets.run(context)
        assert "Table 1" in report
        assert "English outnumbers" in report

    def test_table2(self, context):
        report = table2_human.run(context)
        assert "Table 2" in report and "paper average F" in report
        metrics = table2_human.human_metrics(context)
        # humans over-report English: its recall beats all others
        english = metrics[Language.ENGLISH].recall
        assert all(
            english >= metrics[lang].recall
            for lang in metrics
            if lang is not Language.ENGLISH
        )

    def test_table3(self, context):
        report = table3_human_confusion.run(context)
        assert "Table 3" in report
        matrix = table3_human_confusion.human_confusion(context)
        # biggest confusion with English (the paper's headline)
        for row in (Language.GERMAN, Language.FRENCH):
            off = [
                matrix.percentage(row, col)
                for col in matrix.row_counts
                if col not in (row, Language.ENGLISH)
            ]
            assert matrix.percentage(row, Language.ENGLISH) >= max(off)

    def test_table4(self, context):
        report = table4_cctld.run(context)
        assert "ccTLD baseline" in report
        assert "ccTLD+" in report

    def test_table5(self, context):
        report = table5_cctld_confusion.run(context)
        assert "Table 5" in report and "abstains" in report

    def test_table6(self, context):
        report = table6_nb_confusion.run(context)
        assert "Table 6" in report
        assert "diagonal" in report

    def test_table7_reduced_grid(self, context):
        report = table7_full_grid.run(
            context, grid=(("NB", "words"), ("NB", "custom"))
        )
        assert "NB/words" in report and "NB/custom" in report

    def test_table8(self, context):
        report = table8_nb_words.run(context)
        assert "Table 8" in report and "paper values" in report

    def test_table9(self, context):
        report = table9_combinations.run(context)
        assert "Table 9" in report
        assert "OR" in report and "AND" in report

    def test_table10(self, context):
        report = table10_content.run(context, algorithms=("NB",))
        assert "Table 10" in report
        assert "(content training" in report


class TestFigureDrivers:
    def test_figure1(self, context):
        report = figure1_tree.run(context, prune_depth=2)
        assert "Figure 1" in report
        assert "root feature" in report
        assert "s=" in report

    def test_figure2_small(self, context):
        report = figure2_training_sweep.run(
            context,
            fractions=(0.05, 1.0),
            combos=(("NB", "words"), ("NB", "trigrams")),
        )
        assert "Figure 2" in report
        assert "trigram-over-words gap" in report

    def test_figure3(self, context):
        report = figure3_domain_memo.run(context, fractions=(0.01, 1.0))
        assert "Figure 3" in report
        percentages = figure3_domain_memo.seen_percentages(
            context, fractions=(0.01, 1.0)
        )
        for values in percentages.values():
            assert values[0] <= values[-1] + 1e-9  # monotone-ish growth

    def test_selection(self, context):
        report = selection_15.run(context, max_features=3)
        assert "forward selection" in report
        assert "families selected" in report

    def test_error_analysis(self, context):
        from repro.experiments import error_analysis

        report = error_analysis.run(context)
        assert "Error breakdown" in report
        assert "hardest bucket" in report
