"""Tests for the shared experiment context."""

from repro.experiments.common import ExperimentContext, paper_vs_measured


class TestExperimentContext:
    def test_lazy_data_and_pool(self):
        context = ExperimentContext(seed=2, scale=0.05, wc_scale=0.1)
        assert context.data is context.data  # cached
        assert context.pool is context.pool
        # combined_train materialises a fresh Corpus per access; contents
        # must match.
        assert context.pool.train.urls == context.train.urls

    def test_test_sets_keys(self):
        context = ExperimentContext(seed=2, scale=0.05, wc_scale=0.1)
        assert set(context.test_sets) == {"ODP", "SER", "WC"}

    def test_scale_controls_sizes(self):
        small = ExperimentContext(seed=1, scale=0.05)
        large = ExperimentContext(seed=1, scale=0.1)
        assert len(large.train) > len(small.train)


class TestOpenModel:
    def test_resolves_against_context_store_root(self, small_train, tmp_path):
        from repro.core.pipeline import LanguageIdentifier
        from repro.store import ModelStore

        identifier = LanguageIdentifier("words", "NB", seed=0).fit(
            small_train.subsample(0.2, seed=7)
        )
        ModelStore(tmp_path).save(identifier, "exp")
        context = ExperimentContext(scale=0.05, store_root=str(tmp_path))
        deployed = context.open_model("store://exp")
        assert deployed.name == identifier.name
        # Fitted pool identifiers pass through unchanged.
        assert context.open_model(identifier) is identifier


class TestPaperVsMeasured:
    def test_format(self):
        text = paper_vs_measured(
            "T", [("metric", 0.9, 0.87), ("other", 0.5, 0.55)]
        )
        assert text.startswith("T")
        assert "paper" in text and "measured" in text
        assert "0.90" in text and "0.87" in text
