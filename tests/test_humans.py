"""Tests for the simulated human evaluators."""

from repro.humans.evaluator import (
    EVALUATOR_A,
    EVALUATOR_B,
    HumanEvaluator,
    HumanProfile,
    ambiguous_words,
    default_evaluators,
)
from repro.languages import LANGUAGES, Language


class TestHumanEvaluator:
    def test_deterministic_per_url(self):
        human = HumanEvaluator(EVALUATOR_A, seed=0)
        url = "http://www.blumen-haus.de/garten.html"
        assert human.label(url) == human.label(url)

    def test_defaults_to_english_without_clues(self):
        human = HumanEvaluator(EVALUATOR_B, seed=0)
        assert human.label("http://qxqx.com/12345") is Language.ENGLISH

    def test_cctld_recognised(self):
        perfect = HumanProfile(
            name="p", recognition=1.0, cctld_attention=1.0,
            english_default_bias=0.0, slip_rate=0.0, path_attention=1.0,
        )
        human = HumanEvaluator(perfect, seed=0)
        assert human.label("http://qxqx.it/123") is Language.ITALIAN

    def test_dictionary_words_recognised(self):
        perfect = HumanProfile(
            name="p", recognition=1.0, cctld_attention=1.0,
            english_default_bias=0.0, slip_rate=0.0, path_attention=1.0,
        )
        human = HumanEvaluator(perfect, seed=0)
        url = "http://example.com/recherche/produits"
        assert human.label(url) is Language.FRENCH

    def test_paper_deutsch_example(self):
        """http://viveka.math.hr/LDP/linuxfocus/Deutsch/July2000/ — a
        human can tell from the single token Deutsch it is German."""
        perfect = HumanProfile(
            name="p", recognition=1.0, cctld_attention=1.0,
            english_default_bias=0.0, slip_rate=0.0, path_attention=1.0,
        )
        human = HumanEvaluator(perfect, seed=0)
        url = "http://viveka.math.hr/LDP/linuxfocus/Deutsch/July2000/index.html"
        assert human.label(url) is Language.GERMAN

    def test_decisions_one_hot(self, small_bundle):
        human = HumanEvaluator(EVALUATOR_A, seed=0)
        urls = small_bundle.wc_test.urls[:50]
        decisions = human.decisions(urls)
        for position in range(len(urls)):
            votes = sum(decisions[lang][position] for lang in LANGUAGES)
            assert votes == 1

    def test_label_many_matches_label(self):
        human = HumanEvaluator(EVALUATOR_B, seed=1)
        urls = ["http://a.de/", "http://b.fr/"]
        assert human.label_many(urls) == [human.label(u) for u in urls]

    def test_two_evaluators_differ_somewhere(self, small_bundle):
        a, b = default_evaluators(seed=0)
        urls = small_bundle.wc_test.urls[:200]
        assert a.label_many(urls) != b.label_many(urls)


class TestAmbiguousWords:
    def test_cross_language_words_ambiguous(self):
        # "hotel" is in several of the embedded lexicons.
        assert "hotel" in ambiguous_words()

    def test_distinctive_words_not_ambiguous(self):
        assert "recherche" not in ambiguous_words()
        assert "oeffnungszeiten" not in ambiguous_words()

    def test_cached(self):
        assert ambiguous_words() is ambiguous_words()
