"""Trace ids, stage capture, and the fork-shared span ring buffer."""

from __future__ import annotations

import multiprocessing
import time

from repro.obs.trace import (
    SpanLog,
    TraceContext,
    capture_stages,
    current_stages,
    new_span_id,
    new_trace_id,
    record_stage,
    stage,
    start_trace,
)


class TestIds:
    def test_trace_id_is_32_hex_chars(self):
        trace_id = new_trace_id()
        assert len(trace_id) == 32
        int(trace_id, 16)  # raises if not hex

    def test_trace_ids_are_unique(self):
        assert len({new_trace_id() for _ in range(64)}) == 64

    def test_span_id_is_nonzero_uint32(self):
        for _ in range(64):
            span = new_span_id()
            assert 0 < span < 2**32

    def test_start_trace_mints_root_context(self):
        context = start_trace()
        assert context.parent_id is None
        assert len(context.trace_id) == 32

    def test_child_keeps_trace_and_parents_on_span(self):
        root = TraceContext("ab" * 16, 7)
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == 7
        assert child.span_id != 7 or child.span_id > 0


class TestStageCapture:
    def test_no_capture_means_no_sink(self):
        assert current_stages() is None
        with stage("extract"):
            pass  # must be a no-op, not an error
        record_stage("extract", 1.0)  # silently dropped
        assert current_stages() is None

    def test_capture_accumulates_named_stages(self):
        with capture_stages() as stages:
            with stage("extract"):
                time.sleep(0.001)
            record_stage("matmul", 0.5)
            record_stage("matmul", 0.25)
        assert stages["extract"] > 0.0
        assert stages["matmul"] == 0.75
        assert current_stages() is None  # reset on exit

    def test_nested_captures_do_not_leak(self):
        with capture_stages() as outer:
            with capture_stages() as inner:
                record_stage("a", 1.0)
            record_stage("b", 2.0)
        assert inner == {"a": 1.0}
        assert outer == {"b": 2.0}


def _append_spans(log: SpanLog, worker: int, count: int) -> None:
    for sequence in range(count):
        log.append({"worker": worker, "n": sequence})


class TestSpanLog:
    def test_append_and_snapshot_in_order(self):
        log = SpanLog(capacity=8)
        for n in range(3):
            assert log.append({"n": n})
        assert [span["n"] for span in log.snapshot()] == [0, 1, 2]
        assert len(log) == 3
        assert log.recorded == 3

    def test_ring_evicts_oldest(self):
        log = SpanLog(capacity=4)
        for n in range(10):
            log.append({"n": n})
        assert [span["n"] for span in log.snapshot()] == [6, 7, 8, 9]
        assert len(log) == 4
        assert log.recorded == 10

    def test_limit_returns_newest(self):
        log = SpanLog(capacity=8)
        for n in range(5):
            log.append({"n": n})
        assert [span["n"] for span in log.snapshot(limit=2)] == [3, 4]

    def test_oversized_record_drops_stages_then_gives_up(self):
        log = SpanLog(capacity=2, slot_bytes=64)
        fat = {"op": "classify", "stages": {"x" * 40: 1.0}}
        assert log.append(fat)  # fits once stages are stripped
        (span,) = log.snapshot()
        assert "stages" not in span
        assert not log.append({"blob": "y" * 200})

    def test_clear_empties_the_ring(self):
        log = SpanLog(capacity=4)
        log.append({"n": 1})
        log.clear()
        assert log.snapshot() == []
        assert len(log) == 0

    def test_forked_workers_share_one_ring(self):
        log = SpanLog(capacity=64)
        workers = [
            multiprocessing.Process(
                target=_append_spans, args=(log, worker, 8)
            )
            for worker in range(4)
        ]
        for process in workers:
            process.start()
        for process in workers:
            process.join()
            assert process.exitcode == 0
        spans = log.snapshot()
        assert len(spans) == 32
        by_worker: dict[int, list[int]] = {}
        for span in spans:
            by_worker.setdefault(span["worker"], []).append(span["n"])
        # Every worker's spans arrive complete and in its own order.
        assert set(by_worker) == {0, 1, 2, 3}
        for sequence in by_worker.values():
            assert sequence == sorted(sequence)
