"""Structured JSON event logging (REPRO_LOG=json / --log-json)."""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.obs.events import EventLogger, json_log_enabled


class TestJsonLogEnabled:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        assert not json_log_enabled()

    @pytest.mark.parametrize("value", ["json", "JSON", " json "])
    def test_env_gate_accepts_case_and_whitespace(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_LOG", value)
        assert json_log_enabled()

    def test_other_values_do_not_enable(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "text")
        assert not json_log_enabled()


class TestEventLogger:
    def test_emits_one_json_object_per_line(self):
        stream = io.StringIO()
        logger = EventLogger(stream, component="serve")
        logger.emit("daemon-start", workers=2)
        logger.emit("reload", generation=3)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["event"] == "daemon-start"
        assert first["workers"] == 2
        assert first["component"] == "serve"
        assert first["pid"] == os.getpid()
        assert isinstance(first["ts"], float)
        assert second == {**second, "event": "reload", "generation": 3}

    def test_none_fields_are_dropped(self):
        stream = io.StringIO()
        record = EventLogger(stream).emit("request", trace=None, op="ping")
        assert "trace" not in record
        assert json.loads(stream.getvalue())["op"] == "ping"

    def test_path_mode_appends_across_loggers(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLogger(path=path, component="bulk") as logger:
            logger.emit("run-start", shards_total=3)
        with EventLogger(path=path, component="bulk") as logger:
            logger.emit("run-done", rows_scored=9)
        events = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert [event["event"] for event in events] == [
            "run-start", "run-done",
        ]

    def test_stream_and_path_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError):
            EventLogger(io.StringIO(), path=tmp_path / "x.jsonl")

    def test_write_failures_are_swallowed(self):
        class Broken(io.StringIO):
            def write(self, text):
                raise OSError("disk gone")

        record = EventLogger(Broken()).emit("daemon-stop")
        assert record["event"] == "daemon-stop"
