"""The Prometheus text encoder behind GET /metrics and status --prom."""

from __future__ import annotations

import math
import re

import pytest

from repro.obs.prom import CONTENT_TYPE, render_prometheus

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})? "
    r"(?P<value>\S+)$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_exposition(text: str):
    """A miniature exposition-format checker: returns
    ``(types, samples)`` and asserts the structural rules a Prometheus
    scraper enforces (HELP/TYPE precede samples, names are legal,
    values parse as floats)."""
    types: dict[str, str] = {}
    samples: list[tuple[str, dict, float]] = []
    assert text.endswith("\n")
    for line in text.splitlines():
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert name not in types, f"duplicate TYPE for {name}"
            assert kind in ("counter", "gauge", "histogram", "summary")
            types[name] = kind
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        match = _SAMPLE.match(line)
        assert match, f"unparsable sample line: {line!r}"
        name = match.group("name")
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        assert name in types or family in types, f"sample {name} has no TYPE"
        labels = dict(_LABEL.findall(match.group("labels") or ""))
        value = match.group("value")
        parsed = (
            math.inf if value == "+Inf"
            else -math.inf if value == "-Inf"
            else float("nan") if value == "NaN"
            else float(value)
        )
        samples.append((name, labels, parsed))
    return types, samples


def _status(**overrides) -> dict:
    status = {
        "role": "parent",
        "state": "serving",
        "generation": 1,
        "uptime_seconds": 12.5,
        "workers": 2,
        "inflight": 0,
        "model": {
            "name": "demo",
            "algorithm": "custom-allpairs",
            "feature_set": "allgrams",
            "checksum": "ab" * 32,
        },
        "requests": {
            "count": 7,
            "errors": 1,
            "by_op": {"classify": 5, "status": 2},
            "by_transport": {"unix": 7},
            "latency_ms": {
                "count": 7,
                "mean_ms": 2.0,
                "bounds_ms": [0.5, 5.0],
                "counts": [3, 3, 1],
            },
        },
        "robustness": {
            "overload_rejections": 2,
            "deadline_expiries": 0,
            "retries_observed": 1,
            "worker_respawns": 0,
            "last_crash_at": None,
            "last_crash_age_seconds": None,
        },
        "caches": {"tokenizer": {"hits": 10, "misses": 3}},
    }
    status.update(overrides)
    return status


class TestRenderPrometheus:
    def test_content_type_names_the_text_format(self):
        assert "text/plain" in CONTENT_TYPE
        assert "version=0.0.4" in CONTENT_TYPE

    def test_output_parses_and_covers_core_families(self):
        types, samples = parse_exposition(render_prometheus(_status()))
        assert types["repro_requests_total"] == "counter"
        assert types["repro_daemon_degraded"] == "gauge"
        assert types["repro_request_latency_seconds"] == "histogram"
        by_name = {}
        for name, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        assert ({"op": "classify"}, 5.0) in by_name["repro_requests_total"]
        assert by_name["repro_request_errors_total"] == [({}, 1.0)]

    def test_histogram_buckets_are_cumulative_and_end_plus_inf(self):
        _, samples = parse_exposition(render_prometheus(_status()))
        buckets = [
            (labels["le"], value)
            for name, labels, value in samples
            if name == "repro_request_latency_seconds_bucket"
        ]
        assert buckets == [("0.0005", 3.0), ("0.005", 6.0), ("+Inf", 7.0)]
        counts = [
            value for name, _, value in samples
            if name == "repro_request_latency_seconds_count"
        ]
        assert counts == [7.0]

    def test_none_valued_gauges_are_omitted(self):
        text = render_prometheus(_status())
        assert "# TYPE repro_last_crash_timestamp_seconds gauge" in text
        assert "\nrepro_last_crash_timestamp_seconds " not in text

    def test_crash_age_sample_present_when_known(self):
        status = _status()
        status["robustness"]["last_crash_at"] = 1000.0
        status["robustness"]["last_crash_age_seconds"] = 3.25
        _, samples = parse_exposition(render_prometheus(status))
        values = {name: value for name, _, value in samples}
        assert values["repro_last_crash_timestamp_seconds"] == 1000.0
        assert values["repro_last_crash_age_seconds"] == 3.25

    def test_label_values_are_escaped(self):
        status = _status()
        status["model"]["name"] = 'we"ird\nmo\\del'
        text = render_prometheus(status)
        assert 'model="we\\"ird\\nmo\\\\del"' in text
        parse_exposition(text)

    def test_degraded_state_flips_the_gauge(self):
        _, samples = parse_exposition(
            render_prometheus(_status(state="degraded"))
        )
        values = {name: value for name, _, value in samples}
        assert values["repro_daemon_degraded"] == 1.0

    def test_drift_block_renders_per_language_series(self):
        drift = {
            "window_rows": 100,
            "windows_completed": 2,
            "baseline": {
                "rows": 100,
                "decisions": {"en": 40, "de": 10},
                "decision_rate": {"en": 0.4, "de": 0.1},
                "score_mean": {"en": 1.5, "de": -2.0},
            },
            "window": {
                "rows": 100,
                "decisions": {"en": 60, "de": 10},
                "decision_rate": {"en": 0.6, "de": 0.1},
                "score_mean": {"en": 2.5, "de": -2.0},
            },
            "current": {
                "rows": 5,
                "decisions": {"en": 2, "de": 1},
                "decision_rate": {"en": 0.4, "de": 0.2},
                "score_mean": {"en": 1.0, "de": -1.0},
            },
            "comparison": {
                "en": {"rate_delta": 0.2, "score_shift": 0.5},
                "de": {"rate_delta": 0.0, "score_shift": 0.0},
            },
            "max_abs_rate_delta": 0.2,
        }
        types, samples = parse_exposition(
            render_prometheus(_status(drift=drift))
        )
        assert types["repro_drift_rate_delta"] == "gauge"
        rows = {
            labels["bank"]: value
            for name, labels, value in samples
            if name == "repro_drift_rows_total"
        }
        assert rows == {"baseline": 100.0, "window": 100.0, "current": 5.0}
        deltas = {
            labels["language"]: value
            for name, labels, value in samples
            if name == "repro_drift_rate_delta"
        }
        assert deltas == {"en": pytest.approx(0.2), "de": 0.0}

    def test_trace_block_renders_ring_stats(self):
        _, samples = parse_exposition(
            render_prometheus(
                _status(traces={"retained": 4, "recorded": 19, "capacity": 8})
            )
        )
        values = {name: value for name, _, value in samples}
        assert values["repro_trace_spans_retained"] == 4.0
        assert values["repro_trace_spans_total"] == 19.0
