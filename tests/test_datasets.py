"""Tests for the dataset builders (Table 1)."""

from repro.corpus.generator import UrlCorpusGenerator
from repro.datasets import (
    build_datasets,
    build_odp,
    build_ser,
    build_webcrawl,
)
from repro.languages import LANGUAGES, Language


class TestBuildDatasets:
    def test_bundle_sizes(self, small_bundle):
        data = small_bundle
        assert len(data.odp_train) == 5 * round(1500 * 0.15)
        assert len(data.ser_train) == 5 * round(1000 * 0.15)
        assert len(data.wc_test) > 0

    def test_balanced_train_sets(self, small_bundle):
        counts = small_bundle.odp_train.counts()
        values = list(counts.values())
        assert max(values) == min(values)

    def test_wc_skew(self, small_bundle):
        counts = small_bundle.wc_test.counts()
        english = counts[Language.ENGLISH]
        others = sum(counts[lang] for lang in LANGUAGES[1:])
        assert english > others

    def test_combined_train(self, small_bundle):
        combined = small_bundle.combined_train
        assert len(combined) == len(small_bundle.odp_train) + len(
            small_bundle.ser_train
        )

    def test_test_sets_keys(self, small_bundle):
        assert set(small_bundle.test_sets) == {"ODP", "SER", "WC"}

    def test_deterministic(self):
        first = build_datasets(seed=42, scale=0.05)
        second = build_datasets(seed=42, scale=0.05)
        assert first.odp_train.urls == second.odp_train.urls
        assert first.wc_test.urls == second.wc_test.urls

    def test_train_test_domain_overlap(self, small_bundle):
        """Domains must overlap between train and crawl test (Figure 3)."""
        train_domains = small_bundle.combined_train.domains()
        seen = sum(
            1 for r in small_bundle.wc_test.records if r.domain in train_domains
        )
        assert seen / len(small_bundle.wc_test) > 0.2

    def test_explicit_sizes_override_scale(self):
        data = build_datasets(seed=0, scale=1.0, odp_train=50, ser_train=40,
                              odp_test=20, ser_test=10, wc_scale=0.1)
        assert len(data.odp_train) == 250
        assert len(data.ser_train) == 200


class TestIndividualBuilders:
    def test_build_odp(self):
        generator = UrlCorpusGenerator(seed=1)
        train, test = build_odp(generator, 20, 10)
        assert len(train) == 100 and len(test) == 50
        assert set(train.urls).isdisjoint(test.urls)

    def test_build_ser(self):
        generator = UrlCorpusGenerator(seed=1)
        train, test = build_ser(generator, 15, 5)
        assert len(train) == 75 and len(test) == 25

    def test_build_webcrawl_scale(self):
        generator = UrlCorpusGenerator(seed=1)
        full = build_webcrawl(generator, scale=1.0)
        assert len(full) == 1260
        half = build_webcrawl(generator, scale=0.5)
        counts = half.counts()
        assert counts[Language.ENGLISH] == 541
        assert counts[Language.SPANISH] >= 1  # rounding floor keeps minorities
