"""Test package."""
