"""Tests for the character-level Markov-chain classifier."""

import pytest

from repro.algorithms.markov import MarkovChainClassifier
from repro.features.ngrams import TrigramFeatureExtractor


def trigram_data():
    """German-ish vs English-ish URLs as trigram vectors."""
    extractor = TrigramFeatureExtractor()
    german = [
        "http://blumenhaus.de/strassen", "http://zeitschrift.de/wirtschaft",
        "http://oeffnung.de/geschichte", "http://schmetterling.de/schloss",
        "http://verzeichnis.de/zeitung", "http://strassenbahn.de/schule",
    ]
    english = [
        "http://weather.com/forecast", "http://shopping.com/cheapest",
        "http://thinking.com/knowledge", "http://searching.com/through",
        "http://wishing.com/weather", "http://theater.com/thoughts",
    ]
    vectors = [extractor.extract(url) for url in german + english]
    labels = [True] * len(german) + [False] * len(english)
    return extractor, vectors, labels


class TestMarkovChain:
    def test_learns_character_statistics(self):
        extractor, vectors, labels = trigram_data()
        clf = MarkovChainClassifier().fit(vectors, labels)
        german_like = extractor.extract("http://strassenschild.de/")
        english_like = extractor.extract("http://weathershop.com/")
        assert clf.predict(german_like) is True
        assert clf.predict(english_like) is False

    def test_loglikelihood_negative(self):
        extractor, vectors, labels = trigram_data()
        clf = MarkovChainClassifier().fit(vectors, labels)
        vector = extractor.extract("http://zeitung.de/")
        assert clf.log_likelihood(vector, True) < 0.0
        assert clf.log_likelihood(vector, False) < 0.0

    def test_requires_trigram_features(self):
        with pytest.raises(ValueError, match="trigram features"):
            MarkovChainClassifier().fit(
                [{"w:token": 1.0}, {"w:other": 1.0}], [True, False]
            )

    def test_empty_vector_neutral(self):
        _, vectors, labels = trigram_data()
        clf = MarkovChainClassifier().fit(vectors, labels)
        assert clf.decision_score({}) == 0.0

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            MarkovChainClassifier(alpha=0.0)

    def test_use_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MarkovChainClassifier().log_likelihood({"t:abc": 1.0}, True)

    def test_transition_conditioning(self):
        # P(c|ab) must sum over observed continuations to < 1 (smoothed).
        _, vectors, labels = trigram_data()
        clf = MarkovChainClassifier(alpha=0.1).fit(vectors, labels)
        import math

        prefix_mass = sum(
            math.exp(clf._log_transition("sc" + ch, True))
            for ch in "abcdefghijklmnopqrstuvwxyz "
        )
        assert prefix_mass == pytest.approx(1.0, abs=0.05)

    def test_registry_access(self):
        from repro.algorithms import make_classifier

        assert isinstance(make_classifier("MM"), MarkovChainClassifier)
        from repro.algorithms.rank_order import RankOrderClassifier

        assert isinstance(make_classifier("RO"), RankOrderClassifier)
