"""Tests for the classifier interface helpers."""

import pytest

from repro.algorithms.base import ConstantClassifier, check_fit_inputs
from repro.evaluation.metrics import evaluate_binary


class TestCheckFitInputs:
    def test_accepts_valid(self):
        check_fit_inputs([{"a": 1.0}, {"b": 1.0}], [True, False])

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="differ in length"):
            check_fit_inputs([{"a": 1.0}], [True, False])

    def test_empty(self):
        with pytest.raises(ValueError, match="empty"):
            check_fit_inputs([], [])

    def test_no_positives(self):
        with pytest.raises(ValueError, match="no positive"):
            check_fit_inputs([{"a": 1.0}], [False])

    def test_no_negatives(self):
        with pytest.raises(ValueError, match="no negative"):
            check_fit_inputs([{"a": 1.0}], [True])


class TestConstantClassifier:
    def test_always_yes(self):
        clf = ConstantClassifier(True)
        assert clf.predict({"anything": 1.0}) is True
        assert clf.decision_score({}) > 0

    def test_always_no(self):
        clf = ConstantClassifier(False)
        assert clf.predict({"anything": 1.0}) is False

    def test_fit_is_noop(self):
        clf = ConstantClassifier(True)
        assert clf.fit([], []) is clf

    def test_trivial_f_measure_two_thirds(self):
        """Section 4.2: always-yes gives R=1, P=.5, F=2/3 in the
        balanced setting."""
        clf = ConstantClassifier(True)
        predictions = clf.predict_many([{}] * 100)
        truths = [True] * 50 + [False] * 50
        metrics = evaluate_binary(predictions, truths)
        assert metrics.recall == 1.0
        assert metrics.balanced_precision == 0.5
        assert metrics.f_measure == pytest.approx(2.0 / 3.0)

    def test_predict_many(self):
        assert ConstantClassifier(True).predict_many([{}, {}]) == [True, True]
