"""Cross-algorithm property tests (hypothesis).

Invariants every binary classifier in the library must satisfy,
regardless of training data: decision/predict consistency, determinism,
and robustness to irrelevant perturbations.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import make_classifier

ALGOS = ("NB", "RE", "ME", "DT", "kNN", "RO")

#: Random sparse vectors over a small feature alphabet.
VECTOR = st.dictionaries(
    st.sampled_from(["f0", "f1", "f2", "f3", "shared"]),
    st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
    min_size=1,
    max_size=5,
)


@pytest.fixture(scope="module")
def fitted_all(toy_training):
    vectors, labels = toy_training
    fitted = {}
    for name in ALGOS:
        kwargs = {"iterations": 15} if name == "ME" else {}
        fitted[name] = make_classifier(name, **kwargs).fit(vectors, labels)
    return fitted


@pytest.mark.parametrize("algo", ALGOS)
class TestClassifierInvariants:
    @given(vector=VECTOR)
    @settings(max_examples=25, deadline=None)
    def test_predict_matches_score_sign(self, algo, fitted_all, vector):
        clf = fitted_all[algo]
        assert clf.predict(vector) == (clf.decision_score(vector) > 0.0)

    @given(vector=VECTOR)
    @settings(max_examples=25, deadline=None)
    def test_deterministic(self, algo, fitted_all, vector):
        clf = fitted_all[algo]
        assert clf.decision_score(vector) == clf.decision_score(vector)

    @given(vector=VECTOR)
    @settings(max_examples=25, deadline=None)
    def test_score_is_finite(self, algo, fitted_all, vector):
        import math

        score = fitted_all[algo].decision_score(vector)
        assert math.isfinite(score)

    @given(vectors=st.lists(VECTOR, min_size=1, max_size=5))
    @settings(max_examples=10, deadline=None)
    def test_predict_many_matches_predict(self, algo, fitted_all, vectors):
        clf = fitted_all[algo]
        assert clf.predict_many(vectors) == [clf.predict(v) for v in vectors]
