"""Tests for the algorithm factory registry."""

import pytest

from repro.algorithms import (
    ALGORITHMS,
    DecisionTreeClassifier,
    KNearestNeighborsClassifier,
    MaxEntClassifier,
    NaiveBayesClassifier,
    RelativeEntropyClassifier,
    make_classifier,
)


class TestRegistry:
    def test_all_paper_abbreviations(self):
        # NB/DT/RE/ME: the paper's grid.  kNN: dropped in Section 3.2.
        # RO/MM: the related-work methods rejected for RE in Section 2.
        assert set(ALGORITHMS) == {"NB", "DT", "RE", "ME", "kNN", "RO", "MM"}

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("NB", NaiveBayesClassifier),
            ("DT", DecisionTreeClassifier),
            ("RE", RelativeEntropyClassifier),
            ("ME", MaxEntClassifier),
            ("kNN", KNearestNeighborsClassifier),
        ],
    )
    def test_make_classifier(self, name, cls):
        assert isinstance(make_classifier(name), cls)

    def test_make_classifier_kwargs(self):
        clf = make_classifier("NB", alpha=0.5)
        assert clf.alpha == 0.5

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            make_classifier("SVM")

    def test_names_match_paper_labels(self):
        for name, factory in ALGORITHMS.items():
            assert factory().name == name
