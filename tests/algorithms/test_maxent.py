"""Tests for the Maximum Entropy classifier (all three trainers)."""

import pytest

from repro.algorithms.maxent import MaxEntClassifier


@pytest.mark.parametrize("method", ["lbfgs", "iis", "gd"])
class TestMaxEntAllMethods:
    def test_learns_separable_toy(self, method, toy_training, toy_test):
        vectors, labels = toy_training
        iterations = 40 if method != "gd" else 120
        clf = MaxEntClassifier(method=method, iterations=iterations).fit(
            vectors, labels
        )
        positive, negative = toy_test
        assert clf.predict(positive) is True
        assert clf.predict(negative) is False

    def test_probability_in_unit_interval(self, method, toy_training, toy_test):
        vectors, labels = toy_training
        clf = MaxEntClassifier(method=method, iterations=15).fit(vectors, labels)
        positive, negative = toy_test
        for vector in (positive, negative, {}):
            assert 0.0 <= clf.probability(vector) <= 1.0

    def test_probability_ordering(self, method, toy_training, toy_test):
        vectors, labels = toy_training
        clf = MaxEntClassifier(method=method, iterations=30).fit(vectors, labels)
        positive, negative = toy_test
        assert clf.probability(positive) > clf.probability(negative)


class TestMaxEntSpecifics:
    def test_default_method_is_lbfgs(self):
        assert MaxEntClassifier().method == "lbfgs"

    def test_invalid_method(self):
        with pytest.raises(ValueError, match="method"):
            MaxEntClassifier(method="sgd")

    def test_invalid_iterations(self):
        with pytest.raises(ValueError, match="iterations"):
            MaxEntClassifier(iterations=0)

    def test_use_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MaxEntClassifier().decision_score({"a": 1.0})

    def test_iis_is_scale_invariant(self, toy_training, toy_test):
        """The IIS trainer works on L1-normalised frequencies (Nigam et
        al.), so scaling a test vector must not change its score."""
        vectors, labels = toy_training
        clf = MaxEntClassifier(method="iis", iterations=10).fit(vectors, labels)
        positive, _ = toy_test
        scaled = {name: 50.0 * value for name, value in positive.items()}
        assert clf.decision_score(scaled) == pytest.approx(
            clf.decision_score(positive)
        )

    def test_more_iterations_fit_better(self, toy_training):
        vectors, labels = toy_training
        under = MaxEntClassifier(method="iis", iterations=1).fit(vectors, labels)
        full = MaxEntClassifier(method="iis", iterations=25).fit(vectors, labels)

        def training_accuracy(clf):
            return sum(
                clf.predict(v) == label for v, label in zip(vectors, labels)
            ) / len(labels)

        assert training_accuracy(full) >= training_accuracy(under)

    def test_unseen_features_ignored(self, toy_training, toy_test):
        vectors, labels = toy_training
        clf = MaxEntClassifier(iterations=20).fit(vectors, labels)
        positive, _ = toy_test
        with_unseen = dict(positive)
        with_unseen["brand-new"] = 3.0
        # lbfgs scores raw vectors; unseen features have no weight
        assert clf.decision_score(with_unseen) == pytest.approx(
            clf.decision_score(positive)
        )

    def test_l2_shrinks_weights(self, toy_training):
        vectors, labels = toy_training
        loose = MaxEntClassifier(iterations=60, l2=1e-6).fit(vectors, labels)
        tight = MaxEntClassifier(iterations=60, l2=1.0).fit(vectors, labels)
        loose_norm = sum(w * w for w in loose.weights.values())
        tight_norm = sum(w * w for w in tight.weights.values())
        assert tight_norm < loose_norm
