"""Tests for the decision tree classifier."""

import pytest

from repro.algorithms.decision_tree import DecisionTreeClassifier


def threshold_data():
    """Positive iff feature "x" >= 2 (with a distractor feature)."""
    vectors, labels = [], []
    for x in range(5):
        for _ in range(8):
            vectors.append({"x": float(x), "noise": float(x % 2)})
            labels.append(x >= 2)
    return vectors, labels


class TestDecisionTree:
    def test_learns_threshold_rule(self):
        vectors, labels = threshold_data()
        clf = DecisionTreeClassifier(min_samples_leaf=2).fit(vectors, labels)
        assert clf.predict({"x": 4.0}) is True
        assert clf.predict({"x": 0.0}) is False
        assert clf.predict({"x": 2.0}) is True
        assert clf.predict({"x": 1.0}) is False

    def test_learns_toy_problem(self, toy_training, toy_test):
        vectors, labels = toy_training
        clf = DecisionTreeClassifier(min_samples_leaf=2).fit(vectors, labels)
        positive, negative = toy_test
        assert clf.predict(positive) is True
        assert clf.predict(negative) is False

    def test_missing_feature_treated_as_zero(self):
        vectors, labels = threshold_data()
        clf = DecisionTreeClassifier(min_samples_leaf=2).fit(vectors, labels)
        assert clf.predict({}) is False  # x absent -> 0 -> below threshold

    def test_root_splits_on_informative_feature(self):
        vectors, labels = threshold_data()
        clf = DecisionTreeClassifier(min_samples_leaf=2).fit(vectors, labels)
        assert clf.root is not None
        assert clf.root.feature == "x"

    def test_max_depth_limits(self):
        vectors, labels = threshold_data()
        clf = DecisionTreeClassifier(max_depth=1, min_samples_leaf=2).fit(
            vectors, labels
        )
        assert clf.depth() <= 1

    def test_pruned_copy(self):
        vectors, labels = toy = threshold_data()
        clf = DecisionTreeClassifier(min_samples_leaf=2).fit(vectors, labels)
        pruned = clf.pruned(0)
        assert pruned.depth() == 0
        assert clf.depth() >= 1  # original untouched
        assert pruned.n_leaves() == 1

    def test_format_tree_contains_labels(self):
        vectors, labels = threshold_data()
        clf = DecisionTreeClassifier(min_samples_leaf=2).fit(vectors, labels)
        text = clf.format_tree()
        assert "x >=" in text
        assert "YES" in text and "NO" in text
        assert "s=" in text  # success ratios, Figure 1 style

    def test_format_tree_describe_hook(self):
        vectors, labels = threshold_data()
        clf = DecisionTreeClassifier(min_samples_leaf=2).fit(vectors, labels)
        text = clf.format_tree(describe=lambda name: f"<{name.upper()}>")
        assert "<X>" in text

    def test_success_ratio_bounds(self):
        vectors, labels = threshold_data()
        clf = DecisionTreeClassifier(min_samples_leaf=2).fit(vectors, labels)

        def walk(node):
            assert 0.5 <= node.success_ratio <= 1.0
            if not node.is_leaf:
                walk(node.left)
                walk(node.right)

        walk(clf.root)

    def test_decision_score_sign_matches_predict(self, toy_training, toy_test):
        vectors, labels = toy_training
        clf = DecisionTreeClassifier(min_samples_leaf=2).fit(vectors, labels)
        for vector in toy_test:
            assert (clf.decision_score(vector) > 0) == clf.predict(vector)

    def test_explicit_feature_names(self):
        vectors, labels = threshold_data()
        clf = DecisionTreeClassifier(feature_names=["x"], min_samples_leaf=2)
        clf.fit(vectors, labels)
        assert clf.feature_names == ("x",)  # noise excluded from splits

    def test_criterion_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(criterion="entropy")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)

    def test_use_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().decision_score({"x": 1.0})
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().format_tree()

    def test_misclassification_criterion(self):
        vectors, labels = threshold_data()
        clf = DecisionTreeClassifier(
            criterion="misclassification", min_samples_leaf=2
        ).fit(vectors, labels)
        assert clf.predict({"x": 4.0}) is True
        assert clf.predict({"x": 0.0}) is False
