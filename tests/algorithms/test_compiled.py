"""Compiled-vs-reference equivalence for the vectorized scorers.

The compiled backend is an optimisation, never a semantic fork: for
every score-linear algorithm (NB, RE, RO, MM, ME) the lowered scorer
must reproduce the sparse path's ``decision_score`` within 1e-9 and its
``decisions`` exactly — including on vectors with out-of-vocabulary
features, empty vectors, and adversarial count patterns from hypothesis.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    MarkovChainClassifier,
    MaxEntClassifier,
    NaiveBayesClassifier,
    RankOrderClassifier,
    RelativeEntropyClassifier,
)
from repro.features.indexer import FeatureIndexer

TOLERANCE = 1e-9

#: Word-style feature space used by the toy training sets.
WORD_NAMES = [f"w:tok{i}" for i in range(8)]
#: Trigram-style feature space (what the Markov chain requires).
GRAM_NAMES = ["t:" + a + b + c for a in "ab" for b in "ab" for c in "abc"]

LINEAR_FACTORIES = {
    "NB": lambda: NaiveBayesClassifier(alpha=0.7),
    "RE": lambda: RelativeEntropyClassifier(smoothing=0.4),
    "RO": lambda: RankOrderClassifier(profile_size=6),
    "MM": lambda: MarkovChainClassifier(alpha=0.3),
    "ME": lambda: MaxEntClassifier(iterations=25),
}


def _training_set(names: list[str]) -> tuple[list[dict], list[bool]]:
    """Separable but overlapping vectors over ``names`` (deterministic)."""
    rng = np.random.default_rng(13)
    half = len(names) // 2
    vectors, labels = [], []
    for _ in range(40):
        for positive in (True, False):
            favored = names[:half] if positive else names[half:]
            other = names[half:] if positive else names[:half]
            vector = {name: float(rng.integers(1, 5)) for name in favored}
            for name in other:
                if rng.random() < 0.3:
                    vector[name] = float(rng.integers(1, 3))
            vectors.append(vector)
            labels.append(positive)
    return vectors, labels


def _fit_and_compile(algorithm: str, names: list[str]):
    vectors, labels = _training_set(names)
    classifier = LINEAR_FACTORIES[algorithm]()
    classifier.fit(vectors, labels)
    indexer = FeatureIndexer().fit(vectors)
    scorer = classifier.compile(indexer)
    assert scorer is not None
    return classifier, indexer, scorer


def _names_for(algorithm: str) -> list[str]:
    return GRAM_NAMES if algorithm == "MM" else WORD_NAMES


def _assert_equivalent(classifier, indexer, scorer, test_vectors) -> None:
    batch = indexer.transform(test_vectors)
    compiled_scores = scorer.batch_scores(batch)
    compiled_decisions = scorer.batch_decisions(batch)
    for row, vector in enumerate(test_vectors):
        reference = classifier.decision_score(vector)
        assert compiled_scores[row] == pytest.approx(reference, abs=TOLERANCE)
        assert bool(compiled_decisions[row]) == classifier.predict(vector)


@pytest.mark.parametrize("algorithm", sorted(LINEAR_FACTORIES))
class TestCompiledEquivalence:
    def test_training_vectors_roundtrip(self, algorithm):
        names = _names_for(algorithm)
        classifier, indexer, scorer = _fit_and_compile(algorithm, names)
        vectors, _ = _training_set(names)
        _assert_equivalent(classifier, indexer, scorer, vectors[:40])

    def test_out_of_vocabulary_features(self, algorithm):
        """OOV features must contribute exactly what the sparse path gives
        them (zero for NB/RE/RO, smoothed transitions for MM)."""
        names = _names_for(algorithm)
        classifier, indexer, scorer = _fit_and_compile(algorithm, names)
        oov = (
            ["t:abz", "t:zzz", "t:bca", "x:other"]
            if algorithm == "MM"
            else ["w:never", "w:unseen", "zz:weird"]
        )
        test_vectors = [
            {names[0]: 2.0, oov[0]: 3.0, oov[1]: 1.0},
            {name: 1.0 for name in oov},
            {names[1]: 1.0, names[2]: 4.0, oov[2]: 2.0},
        ]
        _assert_equivalent(classifier, indexer, scorer, test_vectors)

    def test_empty_and_degenerate_vectors(self, algorithm):
        names = _names_for(algorithm)
        classifier, indexer, scorer = _fit_and_compile(algorithm, names)
        test_vectors = [{}, {names[0]: 1.0}, {"w:only-oov": 1.0}]
        _assert_equivalent(classifier, indexer, scorer, test_vectors)

    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(data=st.data())
    def test_property_random_count_vectors(self, algorithm, data):
        names = _names_for(algorithm)
        classifier, indexer, scorer = _fit_and_compile(algorithm, names)
        pool = names + (
            ["t:zzz", "t:aaz"] if algorithm == "MM" else ["w:oov1", "w:oov2"]
        )
        vectors = data.draw(
            st.lists(
                st.dictionaries(
                    st.sampled_from(pool),
                    st.integers(min_value=1, max_value=9).map(float),
                    max_size=len(pool),
                ),
                min_size=1,
                max_size=6,
            )
        )
        _assert_equivalent(classifier, indexer, scorer, vectors)


class TestCompiledStructure:
    def test_rank_order_is_bit_identical(self):
        """RO's compiled scorer works in exact integer arithmetic, so it
        must agree exactly, not just within tolerance."""
        classifier, indexer, scorer = _fit_and_compile("RO", WORD_NAMES)
        vectors, _ = _training_set(WORD_NAMES)
        batch = indexer.transform(vectors[:30])
        scores = scorer.batch_scores(batch)
        for row, vector in enumerate(vectors[:30]):
            assert scores[row] == classifier.decision_score(vector)

    def test_nonlinear_algorithms_do_not_compile(self):
        from repro.algorithms import DecisionTreeClassifier

        vectors, labels = _training_set(WORD_NAMES)
        indexer = FeatureIndexer().fit(vectors)
        for factory in (
            DecisionTreeClassifier,
            # IIS MaxEnt scores over L1-normalised inputs whose mass
            # includes OOV features — no static lowering exists.
            lambda: MaxEntClassifier(method="iis", iterations=5),
        ):
            classifier = factory().fit(vectors, labels)
            assert classifier.compile(indexer) is None

    def test_markov_residual_weight_is_serialisable(self):
        """The compiled Markov scorer's OOV handler must round-trip
        through its JSON state dict with identical weights."""
        from repro.algorithms.markov import MarkovResidualWeight

        classifier, indexer, scorer = _fit_and_compile("MM", GRAM_NAMES)
        handler = scorer.oov_weight
        assert isinstance(handler, MarkovResidualWeight)
        clone = MarkovResidualWeight.from_state_dict(handler.state_dict())
        # Only out-of-vocabulary names reach the handler in practice.
        for name in ("t:abz", "t:zzz", "t:qqq", "w:not-a-gram"):
            assert clone(name) == handler(name) == classifier.feature_weight(name)

    def test_compile_before_fit_raises(self):
        indexer = FeatureIndexer().fit([{"w:a": 1.0}])
        for algorithm in sorted(LINEAR_FACTORIES):
            with pytest.raises(RuntimeError):
                LINEAR_FACTORIES[algorithm]().compile(indexer)

    def test_stacked_columns_match_standalone(self):
        """Stacking scorers' columns (the one-matmul path) must give the
        same scores as each scorer's standalone matmul."""
        classifier, indexer, scorer = _fit_and_compile("RE", WORD_NAMES)
        vectors, _ = _training_set(WORD_NAMES)
        batch = indexer.transform(vectors[:20])
        stacked = np.hstack([scorer.columns(), scorer.columns()])
        sums = batch.matmul(stacked)
        left = scorer.finalize(sums[:, 0:2], batch)
        right = scorer.finalize(sums[:, 2:4], batch)
        standalone = scorer.batch_scores(batch)
        assert np.array_equal(left, standalone)
        assert np.array_equal(right, standalone)
