"""Tests for the Relative Entropy classifier."""

import pytest

from repro.algorithms.relative_entropy import RelativeEntropyClassifier


class TestRelativeEntropy:
    def test_learns_separable_toy(self, toy_training, toy_test):
        vectors, labels = toy_training
        clf = RelativeEntropyClassifier().fit(vectors, labels)
        positive, negative = toy_test
        assert clf.predict(positive) is True
        assert clf.predict(negative) is False

    def test_divergence_nonnegative(self, toy_training, toy_test):
        vectors, labels = toy_training
        clf = RelativeEntropyClassifier().fit(vectors, labels)
        positive, negative = toy_test
        for vector in (positive, negative):
            assert clf.divergence(vector, True) >= -1e-12
            assert clf.divergence(vector, False) >= -1e-12

    def test_closer_class_wins(self, toy_training, toy_test):
        vectors, labels = toy_training
        clf = RelativeEntropyClassifier().fit(vectors, labels)
        positive, _ = toy_test
        assert clf.divergence(positive, True) < clf.divergence(positive, False)

    def test_unknown_features_dropped(self, toy_training):
        vectors, labels = toy_training
        clf = RelativeEntropyClassifier().fit(vectors, labels)
        assert clf.divergence({"totally-new": 5.0}, True) == 0.0
        assert clf.decision_score({"totally-new": 5.0}) == 0.0

    def test_empty_vector_neutral(self, toy_training):
        vectors, labels = toy_training
        clf = RelativeEntropyClassifier().fit(vectors, labels)
        assert clf.decision_score({}) == 0.0

    def test_scale_invariance(self, toy_training, toy_test):
        """RE works on L1-normalised distributions, so scaling the test
        vector must not change the decision."""
        vectors, labels = toy_training
        clf = RelativeEntropyClassifier().fit(vectors, labels)
        positive, _ = toy_test
        scaled = {name: 100.0 * value for name, value in positive.items()}
        assert clf.decision_score(scaled) == pytest.approx(
            clf.decision_score(positive)
        )

    def test_smoothing_validation(self):
        with pytest.raises(ValueError):
            RelativeEntropyClassifier(smoothing=0.0)

    def test_use_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RelativeEntropyClassifier().divergence({"a": 1.0}, True)

    def test_identical_distribution_zero_divergence(self):
        # Train a class on a single distribution; testing that exact
        # distribution must yield (near-)minimal divergence.
        vectors = [{"a": 1.0, "b": 1.0}] * 5 + [{"c": 1.0}] * 5
        labels = [True] * 5 + [False] * 5
        clf = RelativeEntropyClassifier(smoothing=0.01).fit(vectors, labels)
        d_same = clf.divergence({"a": 1.0, "b": 1.0}, True)
        d_other = clf.divergence({"c": 1.0}, True)
        assert d_same < d_other
