"""Tests for the kNN classifier (the paper's omitted algorithm)."""

import pytest

from repro.algorithms.knn import KNearestNeighborsClassifier


class TestKnn:
    def test_learns_separable_toy(self, toy_training, toy_test):
        vectors, labels = toy_training
        clf = KNearestNeighborsClassifier(k=5).fit(vectors, labels)
        positive, negative = toy_test
        assert clf.predict(positive) is True
        assert clf.predict(negative) is False

    def test_k1_memorises_training_points(self, toy_training):
        vectors, labels = toy_training
        clf = KNearestNeighborsClassifier(k=1).fit(vectors, labels)
        for vector, label in zip(vectors[:20], labels[:20]):
            assert clf.predict(vector) is label

    def test_no_overlap_says_no(self, toy_training):
        vectors, labels = toy_training
        clf = KNearestNeighborsClassifier(k=3).fit(vectors, labels)
        assert clf.predict({"unrelated": 1.0}) is False

    def test_empty_query_says_no(self, toy_training):
        vectors, labels = toy_training
        clf = KNearestNeighborsClassifier(k=3).fit(vectors, labels)
        assert clf.predict({}) is False

    def test_k_validation(self):
        with pytest.raises(ValueError):
            KNearestNeighborsClassifier(k=0)

    def test_use_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KNearestNeighborsClassifier().decision_score({"a": 1.0})

    def test_majority_vote(self):
        vectors = [
            {"a": 1.0}, {"a": 1.0, "b": 0.1}, {"a": 1.0, "c": 0.1},
            {"a": 1.0, "z": 3.0}, {"a": 1.0, "z": 3.1},
        ]
        labels = [True, True, True, False, False]
        clf = KNearestNeighborsClassifier(k=5).fit(vectors, labels)
        # query close to the three positives
        assert clf.predict({"a": 1.0}) is True

    def test_underperforms_on_url_task(self, small_train, small_bundle):
        """The reason the paper dropped kNN: 'considerably worse results
        in preliminary experiments'.  Reproduce the preliminary check."""
        from repro.core.pipeline import LanguageIdentifier
        from repro.evaluation.metrics import average_f

        knn = LanguageIdentifier(
            "words", "kNN", algorithm_kwargs={"k": 5}
        ).fit(small_train)
        nb = LanguageIdentifier("words", "NB").fit(small_train)
        test = small_bundle.odp_test
        knn_f = average_f(list(knn.evaluate(test).values()))
        nb_f = average_f(list(nb.evaluate(test).values()))
        assert knn_f < nb_f
