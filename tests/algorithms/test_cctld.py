"""Tests for the ccTLD / ccTLD+ baselines."""

import pytest

from repro.algorithms.cctld import CcTldBinaryClassifier, CcTldLabeler
from repro.languages import Language


class TestCcTldLabeler:
    def test_maps_paper_examples(self):
        labeler = CcTldLabeler()
        assert labeler.label("http://www.fireball.de/") is Language.GERMAN
        assert labeler.label("http://www.monde.fr/") is Language.FRENCH
        assert labeler.label("http://www.corriere.it/") is Language.ITALIAN
        assert labeler.label("http://www.uol.mx/") is Language.SPANISH
        assert labeler.label("http://www.bbc.co.uk/") is Language.ENGLISH

    def test_gov_and_mil_are_english(self):
        labeler = CcTldLabeler()
        assert labeler.label("http://www.nasa.gov/") is Language.ENGLISH
        assert labeler.label("http://www.army.mil/") is Language.ENGLISH

    def test_unmapped_tlds_are_none(self):
        labeler = CcTldLabeler()
        assert labeler.label("http://www.example.com/") is None
        assert labeler.label("http://www.example.net/") is None
        assert labeler.label("http://www.admin.ch/") is None

    def test_plus_mode_assigns_com_org_to_english(self):
        plus = CcTldLabeler(plus=True)
        # The paper's motivating failure: a German page on .com is
        # labelled English by ccTLD+.
        assert plus.label("http://www.wasserbett-test.com") is Language.ENGLISH
        assert plus.label("http://www.example.org/") is Language.ENGLISH

    def test_plus_mode_leaves_cctlds_alone(self):
        plus = CcTldLabeler(plus=True)
        assert plus.label("http://www.heise.de/") is Language.GERMAN

    def test_plus_mode_still_none_for_net(self):
        assert CcTldLabeler(plus=True).label("http://x.net/") is None

    def test_names(self):
        assert CcTldLabeler().name == "ccTLD"
        assert CcTldLabeler(plus=True).name == "ccTLD+"

    def test_label_many(self):
        labeler = CcTldLabeler()
        labels = labeler.label_many(["http://a.de/", "http://b.com/"])
        assert labels == [Language.GERMAN, None]

    def test_tld_only_not_path(self):
        # only the TLD counts; a /de/ path segment is ignored
        assert CcTldLabeler().label("http://example.com/de/") is None


class TestCcTldBinaryClassifier:
    def test_predict_url(self):
        german = CcTldBinaryClassifier("de")
        assert german.predict_url("http://www.spiegel.de/") is True
        assert german.predict_url("http://www.lemonde.fr/") is False

    def test_fit_is_noop(self):
        clf = CcTldBinaryClassifier("fr")
        assert clf.fit([], []) is clf

    def test_name_reflects_plus(self):
        assert CcTldBinaryClassifier("en", plus=True).name == "ccTLD+"

    def test_feature_vector_interface_not_supported(self):
        clf = CcTldBinaryClassifier("de")
        with pytest.raises(NotImplementedError):
            clf.decision_score({"w:de": 1.0})
        with pytest.raises(NotImplementedError):
            clf.predict({"w:de": 1.0})
