"""Tests for the Cavnar-Trenkle rank-order classifier."""

import pytest

from repro.algorithms.rank_order import RankOrderClassifier


class TestRankOrder:
    def test_learns_separable_toy(self, toy_training, toy_test):
        vectors, labels = toy_training
        clf = RankOrderClassifier(profile_size=10).fit(vectors, labels)
        positive, negative = toy_test
        assert clf.predict(positive) is True
        assert clf.predict(negative) is False

    def test_out_of_place_nonnegative(self, toy_training, toy_test):
        vectors, labels = toy_training
        clf = RankOrderClassifier(profile_size=10).fit(vectors, labels)
        for vector in toy_test:
            assert clf.out_of_place(vector, True) >= 0.0
            assert clf.out_of_place(vector, False) >= 0.0

    def test_profile_feature_zero_distance(self):
        # A test vector ranked identically to the class profile has
        # out-of-place distance 0 to that class.
        vectors = [{"a": 3.0, "b": 2.0, "c": 1.0}] * 5 + [{"z": 1.0}] * 5
        labels = [True] * 5 + [False] * 5
        clf = RankOrderClassifier(profile_size=5).fit(vectors, labels)
        assert clf.out_of_place({"a": 3.0, "b": 2.0, "c": 1.0}, True) == 0.0

    def test_unknown_features_max_penalty(self):
        vectors = [{"a": 1.0}] * 3 + [{"b": 1.0}] * 3
        labels = [True] * 3 + [False] * 3
        clf = RankOrderClassifier(profile_size=7).fit(vectors, labels)
        assert clf.out_of_place({"zzz": 1.0}, True) == 7.0

    def test_empty_vector(self, toy_training):
        vectors, labels = toy_training
        clf = RankOrderClassifier(profile_size=10).fit(vectors, labels)
        assert clf.out_of_place({}, True) == 10.0

    def test_profile_size_validation(self):
        with pytest.raises(ValueError):
            RankOrderClassifier(profile_size=0)

    def test_use_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RankOrderClassifier().out_of_place({"a": 1.0}, True)

    def test_length_normalisation(self):
        # The same distribution repeated should not change the decision.
        vectors = [{"a": 2.0, "b": 1.0}] * 4 + [{"c": 2.0, "d": 1.0}] * 4
        labels = [True] * 4 + [False] * 4
        clf = RankOrderClassifier(profile_size=10).fit(vectors, labels)
        short = clf.decision_score({"a": 2.0, "b": 1.0})
        long = clf.decision_score({"a": 20.0, "b": 10.0})
        assert (short > 0) == (long > 0)
