"""Tests for the multinomial Naive Bayes classifier."""

import pytest

from repro.algorithms.naive_bayes import NaiveBayesClassifier


class TestNaiveBayes:
    def test_learns_separable_toy(self, toy_training, toy_test):
        vectors, labels = toy_training
        clf = NaiveBayesClassifier().fit(vectors, labels)
        positive, negative = toy_test
        assert clf.predict(positive) is True
        assert clf.predict(negative) is False

    def test_decision_score_signs(self, toy_training, toy_test):
        vectors, labels = toy_training
        clf = NaiveBayesClassifier().fit(vectors, labels)
        positive, negative = toy_test
        assert clf.decision_score(positive) > 0 > clf.decision_score(negative)

    def test_unseen_features_ignored(self, toy_training, toy_test):
        vectors, labels = toy_training
        clf = NaiveBayesClassifier().fit(vectors, labels)
        positive, _ = toy_test
        with_unseen = dict(positive)
        with_unseen["never-seen-feature"] = 100.0
        assert clf.decision_score(with_unseen) == pytest.approx(
            clf.decision_score(positive)
        )

    def test_counts_matter(self):
        vectors = [{"de": 1.0}, {"fr": 1.0}]
        clf = NaiveBayesClassifier().fit(vectors, [True, False])
        weak = clf.decision_score({"de": 1.0})
        strong = clf.decision_score({"de": 3.0})
        assert strong > weak > 0

    def test_prior_reflects_imbalance(self):
        vectors = [{"x": 1.0}] * 3 + [{"x": 1.0}] * 1
        clf = NaiveBayesClassifier().fit(vectors, [True, True, True, False])
        # identical likelihoods; prior 3:1 drives the positive decision
        assert clf.predict({"x": 1.0}) is True

    def test_feature_log_odds(self, toy_training):
        vectors, labels = toy_training
        clf = NaiveBayesClassifier().fit(vectors, labels)
        assert clf.feature_log_odds("f0") > 0
        assert clf.feature_log_odds("f2") < 0

    def test_empty_vector_scores_prior(self):
        vectors = [{"a": 1.0}] * 2 + [{"b": 1.0}] * 2
        clf = NaiveBayesClassifier().fit(vectors, [True, True, False, False])
        assert clf.decision_score({}) == pytest.approx(0.0)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            NaiveBayesClassifier(alpha=0.0)

    def test_use_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            NaiveBayesClassifier().decision_score({"a": 1.0})

    def test_negative_values_ignored(self, toy_training, toy_test):
        vectors, labels = toy_training
        clf = NaiveBayesClassifier().fit(vectors, labels)
        positive, _ = toy_test
        noisy = dict(positive)
        noisy["f2"] = -5.0  # negative counts are not meaningful; ignored
        assert clf.decision_score(noisy) == pytest.approx(
            clf.decision_score(positive)
        )

    def test_smoothing_strength(self):
        vectors = [{"rare": 1.0, "common": 5.0}, {"common": 5.0}]
        weak = NaiveBayesClassifier(alpha=10.0).fit(vectors, [True, False])
        strong = NaiveBayesClassifier(alpha=0.01).fit(vectors, [True, False])
        # less smoothing -> the rare feature is more decisive
        assert strong.decision_score({"rare": 1.0}) > weak.decision_score(
            {"rare": 1.0}
        )
