"""Resolution failures raise the typed hierarchy with actionable messages.

Every path the satellite checklist names: nonexistent path, dead daemon
socket, unknown scheme, artifact/store version mismatch, and the
pickle-deprecation warning — plus the registry's own guard rails.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.api import (
    BackendUnavailableError,
    InvalidHandleError,
    ModelNotFoundError,
    ResolveError,
    UnknownSchemeError,
    UnreadableModelError,
    VersionMismatchError,
    open_model,
    register_scheme,
    registered_schemes,
    resolve_artifact_path,
    sniff_model_format,
)
from repro.core.pipeline import LanguageIdentifier
from repro.store import ModelStore, save_identifier
from repro.store.format import FORMAT_VERSION, MAGIC


@pytest.fixture(scope="module")
def identifier(small_train):
    return LanguageIdentifier("words", "NB", seed=0).fit(
        small_train.subsample(0.25, seed=9)
    )


@pytest.fixture(scope="module")
def artifact_path(tmp_path_factory, identifier):
    path = tmp_path_factory.mktemp("err-models") / "model.urlmodel"
    save_identifier(identifier, path)
    return path


class TestPathErrors:
    def test_nonexistent_path(self, tmp_path):
        with pytest.raises(ModelNotFoundError, match="repro train"):
            open_model(str(tmp_path / "missing.urlmodel"))

    def test_not_found_is_also_file_not_found(self, tmp_path):
        """Pre-facade callers caught FileNotFoundError; still can."""
        with pytest.raises(FileNotFoundError):
            open_model(str(tmp_path / "missing.urlmodel"))

    def test_garbage_file_is_unreadable(self, tmp_path):
        path = tmp_path / "noise.bin"
        path.write_bytes(b"\x93definitely not a model\x00" * 4)
        with pytest.warns(DeprecationWarning):  # sniffed as a pickle try
            with pytest.raises(UnreadableModelError, match="neither"):
                open_model(str(path))

    def test_pickle_of_non_identifier_is_unreadable(self, tmp_path):
        path = tmp_path / "dict.pkl"
        with open(path, "wb") as handle:
            pickle.dump({"not": "a model"}, handle)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(UnreadableModelError, match="not a language"):
                open_model(str(path))

    def test_artifact_version_mismatch(self, tmp_path, artifact_path):
        raw = artifact_path.read_bytes()
        header_length = int.from_bytes(raw[len(MAGIC): len(MAGIC) + 8], "little")
        header = json.loads(raw[len(MAGIC) + 8: len(MAGIC) + 8 + header_length])
        header["format_version"] = FORMAT_VERSION + 1
        encoded = json.dumps(header, sort_keys=True).encode("utf-8")
        encoded += b" " * (header_length - len(encoded))
        future = tmp_path / "future.urlmodel"
        future.write_bytes(
            raw[: len(MAGIC) + 8] + encoded
            + raw[len(MAGIC) + 8 + header_length:]
        )
        with pytest.raises(VersionMismatchError, match="incompatible format"):
            open_model(str(future))

    def test_type_error_for_non_handles(self):
        with pytest.raises(TypeError, match="got int"):
            open_model(12345)


class TestSchemeErrors:
    def test_unknown_scheme_lists_registered(self):
        with pytest.raises(UnknownSchemeError) as info:
            open_model("s3://bucket/model")
        message = str(info.value)
        assert "repro" in message and "store" in message
        assert "register_scheme" in message

    def test_empty_daemon_socket_path(self):
        with pytest.raises(InvalidHandleError, match="empty socket path"):
            open_model("repro://")

    def test_invalid_handle_is_also_value_error(self):
        with pytest.raises(ValueError):
            open_model("repro://")

    def test_dead_daemon_socket(self, tmp_path):
        with pytest.raises(BackendUnavailableError, match="serve start"):
            open_model(f"repro://{tmp_path / 'nobody-home.sock'}")

    def test_daemon_refusal_is_typed_too(self, tmp_path, monkeypatch):
        """A live daemon refusing the resolve ping (e.g. a protocol-
        version gate) surfaces as the same typed error, not a raw
        DaemonRequestError traceback."""
        from repro.store.client import DaemonRequestError, RemoteIdentifier

        def refuse(self):
            raise DaemonRequestError("protocol-version", "speak v99")

        monkeypatch.setattr("repro.store.client.DaemonClient.ping", refuse)
        closed = []
        monkeypatch.setattr(
            RemoteIdentifier, "close", lambda self: closed.append(True)
        )
        with pytest.raises(BackendUnavailableError, match="protocol-version"):
            open_model(f"repro://{tmp_path / 'gated.sock'}")
        assert closed  # the failed resolve released its connection

    def test_all_errors_share_one_base(self, tmp_path):
        for handle in (
            "s3://x", "repro://", f"repro://{tmp_path / 'dead.sock'}",
            str(tmp_path / "missing.urlmodel"), "store://absent",
        ):
            with pytest.raises(ResolveError):
                open_model(handle, store_root=tmp_path)


class TestStoreErrors:
    def test_missing_store_name(self, tmp_path, identifier):
        store = ModelStore(tmp_path / "models")
        store.save(identifier, "present")
        with pytest.raises(ModelNotFoundError, match="present"):
            open_model("store://absent", store_root=store.root)

    def test_store_version_mismatch(self, tmp_path, identifier):
        store = ModelStore(tmp_path / "models")
        store.save(identifier, "deployed")
        with pytest.raises(VersionMismatchError, match="pinned"):
            open_model("store://deployed@deadbeef", store_root=store.root)

    def test_store_pin_is_case_insensitive(self, tmp_path, identifier):
        """Hex is hex: an uppercase-pasted checksum pin must match."""
        store = ModelStore(tmp_path / "models")
        checksum = store.save(identifier, "deployed").checksum
        predictor = open_model(
            f"store://deployed@{checksum[:12].upper()}", store_root=store.root
        )
        assert predictor.name == identifier.name

    def test_stale_model_handle_raises_typed(self, tmp_path, identifier):
        """A ModelHandle whose artifact vanished after store.list()
        fails with the same typed hierarchy as every other route."""
        store = ModelStore(tmp_path / "models")
        handle = store.save(identifier, "ephemeral")
        store.delete("ephemeral")
        with pytest.raises(ResolveError, match="ephemeral"):
            open_model(handle)

    def test_nameless_store_handle(self, tmp_path):
        with pytest.raises(InvalidHandleError, match="names no model"):
            open_model("store://", store_root=tmp_path)
        with pytest.raises(InvalidHandleError, match="names no model"):
            open_model("store://@abc123", store_root=tmp_path)

    def test_nested_store_name_rejected(self, tmp_path):
        with pytest.raises(InvalidHandleError, match="invalid store model"):
            open_model("store://a/b", store_root=tmp_path)

    def test_missing_store_root_is_typed_and_creates_nothing(self, tmp_path):
        """A failed read must not litter the filesystem with an empty
        store directory (ModelStore's constructor would mkdir it)."""
        root = tmp_path / "no-such-store"
        with pytest.raises(ModelNotFoundError, match="store root"):
            open_model("store://anything", store_root=root)
        assert not root.exists()


class TestPickleDeprecation:
    def test_pickle_route_warns_with_replacement(self, tmp_path, identifier):
        path = tmp_path / "legacy.pkl"
        with open(path, "wb") as handle:
            pickle.dump(identifier, handle)
        with pytest.warns(DeprecationWarning, match="train --format artifact"):
            predictor = open_model(str(path))
        assert predictor.name == identifier.name

    def test_artifact_route_does_not_warn(self, artifact_path, recwarn):
        open_model(str(artifact_path))
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]


class TestArtifactPathResolution:
    def test_plain_path_passes_through(self, artifact_path):
        assert resolve_artifact_path(artifact_path) == str(artifact_path)

    def test_store_handle_resolves_to_file(self, tmp_path, identifier):
        store = ModelStore(tmp_path / "models")
        handle = store.save(identifier, "served")
        resolved = resolve_artifact_path("store://served", store_root=store.root)
        assert resolved == str(handle.path)

    def test_pickle_rejected_for_serving(self, tmp_path, identifier):
        path = tmp_path / "legacy.pkl"
        with open(path, "wb") as handle:
            pickle.dump(identifier, handle)
        with pytest.raises(UnreadableModelError, match="format artifact"):
            resolve_artifact_path(str(path))

    def test_daemon_handle_rejected_for_serving(self):
        with pytest.raises(InvalidHandleError, match="running daemon"):
            resolve_artifact_path("repro://live.sock")

    def test_sniff_reports_both_formats(self, tmp_path, artifact_path):
        assert sniff_model_format(artifact_path) == "artifact"
        legacy = tmp_path / "legacy.pkl"
        with open(legacy, "wb") as handle:
            pickle.dump({"any": "pickle"}, handle)
        assert sniff_model_format(legacy) == "pickle"
        with pytest.raises(ModelNotFoundError):
            sniff_model_format(tmp_path / "nope.urlmodel")


class TestRegistry:
    def test_custom_scheme_round_trips(self, identifier):
        register_scheme("memtest", lambda rest, context: identifier)
        try:
            assert "memtest" in registered_schemes()
            assert open_model("memtest://anything") is identifier
        finally:
            # Keep the process-wide registry clean for other tests.
            from repro.api import resolver

            resolver._SCHEMES.pop("memtest", None)

    def test_duplicate_registration_guard(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scheme("repro", lambda rest, context: None)

    def test_invalid_scheme_name(self):
        with pytest.raises(ValueError, match="invalid scheme"):
            register_scheme("no spaces", lambda rest, context: None)
