"""Every resolution route answers exactly like the sparse oracle.

The facade's core promise: whatever handle :func:`repro.api.open_model`
resolves — a fitted identifier, an artifact path, a ``store://`` name
(pinned or not), a ``ModelHandle``, a legacy pickle, a live
``repro://`` daemon — the returned predictor's ``decisions()`` are
**byte-identical** to the trained model's sparse reference path, and
the typed ``predict`` surface agrees with the raw primitives.
"""

from __future__ import annotations

import pickle

import pytest

from repro.api import open_model
from repro.core.pipeline import LanguageIdentifier
from repro.store import ModelStore, save_identifier
from repro.store.daemon import start_daemon, stop_daemon


@pytest.fixture(scope="module")
def oracle_identifier(small_train):
    train = small_train.subsample(0.4, seed=5)
    return LanguageIdentifier("words", "NB", seed=0).fit(train)


@pytest.fixture(scope="module")
def urls(small_bundle):
    return small_bundle.odp_test.urls[:80]


@pytest.fixture(scope="module")
def oracle(oracle_identifier, urls):
    """The sparse reference answers (string-keyed dict walks)."""
    return oracle_identifier._sparse_decisions(urls)


@pytest.fixture(scope="module")
def artifact_path(tmp_path_factory, oracle_identifier):
    path = tmp_path_factory.mktemp("api-models") / "model.urlmodel"
    save_identifier(oracle_identifier, path)
    return path


@pytest.fixture(scope="module")
def pickle_path(tmp_path_factory, oracle_identifier):
    path = tmp_path_factory.mktemp("api-pickles") / "model.pkl"
    with open(path, "wb") as handle:
        pickle.dump(oracle_identifier, handle)
    return path


@pytest.fixture(scope="module")
def store(tmp_path_factory, oracle_identifier):
    store = ModelStore(tmp_path_factory.mktemp("api-store") / "models")
    store.save(oracle_identifier, "deployed")
    return store


def assert_oracle_equivalent(predictor, urls, oracle):
    """Byte-identical decisions + a self-consistent predict() batch."""
    assert predictor.decisions(urls) == oracle
    result = predictor.predict(urls)
    assert result.decisions == oracle
    assert len(result) == len(urls)
    # Row-major views agree with the column-major batch.
    for row, prediction in enumerate(result):
        assert prediction.url == urls[row]
        assert prediction.best == result.best[row]
        for language in oracle:
            assert (language in prediction.positives) == oracle[language][row]


class TestLocalRoutes:
    def test_fitted_identifier_passes_through(
        self, oracle_identifier, urls, oracle
    ):
        predictor = open_model(oracle_identifier)
        assert predictor is oracle_identifier
        assert_oracle_equivalent(predictor, urls, oracle)

    def test_artifact_path(self, artifact_path, urls, oracle):
        assert_oracle_equivalent(open_model(str(artifact_path)), urls, oracle)

    def test_artifact_pathlike(self, artifact_path, urls, oracle):
        assert_oracle_equivalent(open_model(artifact_path), urls, oracle)

    def test_legacy_pickle_warns_but_matches(self, pickle_path, urls, oracle):
        with pytest.warns(DeprecationWarning, match="open_model"):
            predictor = open_model(str(pickle_path))
        assert_oracle_equivalent(predictor, urls, oracle)


class TestStoreRoutes:
    def test_store_scheme_with_root(self, store, urls, oracle):
        predictor = open_model("store://deployed", store_root=store.root)
        assert_oracle_equivalent(predictor, urls, oracle)

    def test_store_scheme_via_environment(
        self, store, urls, oracle, monkeypatch
    ):
        monkeypatch.setenv("REPRO_MODEL_STORE", str(store.root))
        assert_oracle_equivalent(open_model("store://deployed"), urls, oracle)

    def test_store_scheme_pinned_checksum(self, store, urls, oracle):
        checksum = store.describe("deployed").checksum
        predictor = open_model(
            f"store://deployed@{checksum[:12]}", store_root=store.root
        )
        assert_oracle_equivalent(predictor, urls, oracle)

    def test_model_handle_object(self, store, urls, oracle):
        handle = store.describe("deployed")
        assert_oracle_equivalent(open_model(handle), urls, oracle)


class TestDaemonRoute:
    @pytest.fixture(scope="class")
    def daemon_socket(self, artifact_path, tmp_path_factory):
        socket_path = tmp_path_factory.mktemp("api-daemon") / "api.sock"
        start_daemon(artifact_path, socket_path, workers=1)
        yield socket_path
        stop_daemon(socket_path)

    def test_repro_scheme(self, daemon_socket, urls, oracle):
        with open_model(f"repro://{daemon_socket}") as predictor:
            assert_oracle_equivalent(predictor, urls, oracle)

    def test_remote_capabilities_cached_across_batches(self, daemon_socket):
        """Streamed chunks must not pay a status round-trip each: the
        capability block is fetched once and reused."""
        with open_model(f"repro://{daemon_socket}") as predictor:
            first = predictor.capabilities()
            assert first.remote and first.model.backend == "remote"
            assert predictor.capabilities() is first
        assert predictor.capabilities() is not first  # close() refetches

    def test_all_routes_agree_with_each_other(
        self, daemon_socket, artifact_path, store, urls, oracle
    ):
        """The acceptance sweep: one oracle, every scheme, one answer."""
        handles = [
            str(artifact_path),
            f"store://deployed@{store.describe('deployed').checksum[:8]}",
            f"repro://{daemon_socket}",
        ]
        for handle in handles:
            predictor = open_model(handle, store_root=store.root)
            try:
                assert predictor.decisions(urls) == oracle, handle
            finally:
                predictor.close()


class TestStreaming:
    def test_predict_iter_matches_batch(self, artifact_path, urls, oracle):
        predictor = open_model(artifact_path)
        batch = predictor.predict(urls)
        streamed = list(predictor.predict_iter(iter(urls), chunk_size=7))
        assert [p.url for p in streamed] == list(urls)
        assert streamed == [batch[row] for row in range(len(urls))]

    def test_predict_iter_never_materialises(self, artifact_path, urls):
        """Chunks are scored as they fill: after pulling one prediction
        from a 3-URL chunk over an endless generator, only one chunk's
        worth of input has been consumed."""
        predictor = open_model(artifact_path)
        pulled = 0

        def endless():
            nonlocal pulled
            while True:
                pulled += 1
                yield urls[pulled % len(urls)]

        stream = predictor.predict_iter(endless(), chunk_size=3)
        next(stream)
        assert pulled == 3
