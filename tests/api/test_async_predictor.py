"""AsyncPredictor conformance: parity with the sync facade, multiplexed
concurrency, cancellation, and the sync client's retry/deadline matrix.

Every test drives coroutines through ``asyncio.run`` inside plain
synchronous test functions (no asyncio pytest plugin needed).  Three
layers:

* conformance against a live dual-listener daemon — ``adecisions`` /
  ``apredict`` byte-identical to the sparse oracle and to the sync
  :class:`Predictor` over the same daemon, on both transports;
* multiplexing — N concurrent callers share one connection and each
  gets *its own* answer back (correlation-id pairing under fan-in);
* the scripted-server retry matrix from the robustness suite, re-run
  against :class:`AsyncDaemonClient` so the async stack's
  :class:`RetryPolicy`/deadline semantics cannot drift from the sync
  client's.
"""

from __future__ import annotations

import asyncio
import socket
import threading

import pytest

from repro.api import AsyncPredictor, BatchResult, aopen_model, open_model
from repro.api.errors import BackendUnavailableError
from repro.core.pipeline import LanguageIdentifier
from repro.store import save_identifier
from repro.store.client import (
    AsyncDaemonClient,
    AsyncRemoteIdentifier,
    DaemonRequestError,
    DaemonUnavailableError,
    RetryPolicy,
)
from repro.store.daemon import start_daemon, stop_daemon
from repro.store.wire import recv_frame, send_message
from tests.store.test_robustness import ScriptedServer

FAST = RetryPolicy(retries=4, backoff=0.01, backoff_max=0.02)


@pytest.fixture(scope="module")
def identifier(small_train):
    return LanguageIdentifier("words", "NB", seed=0).fit(
        small_train.subsample(0.3, seed=7)
    )


@pytest.fixture(scope="module")
def test_urls(small_bundle):
    return small_bundle.odp_test.urls[:30]


@pytest.fixture(scope="module")
def live_daemon(identifier, tmp_path_factory):
    """One dual-listener daemon shared by the conformance tests:
    ``(artifact_path, socket_path, tcp_port)``."""
    root = tmp_path_factory.mktemp("aio-daemon")
    model_path = root / "aio.urlmodel"
    socket_path = root / "aio.sock"
    save_identifier(identifier, model_path)
    start_daemon(model_path, socket_path, workers=2, tcp="127.0.0.1:0")
    from repro.store.client import DaemonClient

    with DaemonClient(socket_path) as client:
        port = client.status()["tcp"]["port"]
    yield model_path, socket_path, port
    stop_daemon(socket_path)


def handles_of(live_daemon):
    model_path, socket_path, port = live_daemon
    return {
        "unix": f"repro://{socket_path}",
        "tcp": f"repro+tcp://127.0.0.1:{port}",
        "local": str(model_path),
    }


class TestConformance:
    @pytest.mark.parametrize("route", ["unix", "tcp", "local"])
    def test_adecisions_byte_identical_to_sparse_oracle(
        self, live_daemon, identifier, test_urls, route
    ):
        handle = handles_of(live_daemon)[route]

        async def run():
            model = await aopen_model(handle)
            try:
                return await model.adecisions(test_urls)
            finally:
                await model.aclose()

        assert asyncio.run(run()) == identifier._sparse_decisions(test_urls)

    @pytest.mark.parametrize("route", ["unix", "tcp", "local"])
    def test_apredict_matches_the_sync_predictor_exactly(
        self, live_daemon, identifier, test_urls, route
    ):
        handle = handles_of(live_daemon)[route]
        with open_model(handle) as sync_model:
            expected = sync_model.predict(test_urls)

        async def run():
            async with await aopen_model(handle) as model:
                return await model.apredict(test_urls)

        result = asyncio.run(run())
        assert isinstance(result, BatchResult)
        assert result.urls == expected.urls
        assert result.scores == expected.scores
        assert result.decisions == expected.decisions
        assert result.best == expected.best
        assert result.model.name == expected.model.name

    def test_every_route_satisfies_the_protocol(self, live_daemon):
        for handle in handles_of(live_daemon).values():

            async def run(handle=handle):
                model = await aopen_model(handle)
                try:
                    assert isinstance(model, AsyncPredictor)
                    assert (await model.acapabilities()).model.name
                    assert isinstance(model.name, str)
                finally:
                    await model.aclose()

            asyncio.run(run())

    def test_remote_capabilities_report_the_handle(self, live_daemon):
        handle = handles_of(live_daemon)["tcp"]

        async def run():
            async with await aopen_model(handle) as model:
                capabilities = await model.acapabilities()
                assert capabilities.remote is True
                assert capabilities.model.backend == "remote"
                assert capabilities.model.source == handle.split("?")[0]

        asyncio.run(run())

    def test_handle_options_pin_the_async_dial_settings(self, live_daemon):
        handle = handles_of(live_daemon)["tcp"] + (
            "?timeout=7&retries=2&backoff=0.2&deadline=3"
        )

        async def run():
            async with await aopen_model(handle) as model:
                client = model.client
                assert client.timeout == 7.0
                assert client.retry.retries == 2
                assert client.retry.backoff == 0.2
                assert client.retry.deadline == 3.0
                assert await client.aping() is True

        asyncio.run(run())

    def test_dead_endpoint_raises_the_typed_facade_error(self, sockpath):
        async def run():
            with pytest.raises(BackendUnavailableError):
                await aopen_model(f"repro://{sockpath('gone.sock')}")

        asyncio.run(run())


class TestMultiplexing:
    def test_concurrent_callers_share_one_connection_and_get_their_own_answers(
        self, live_daemon, identifier, test_urls
    ):
        """Fan-in correctness: each concurrent caller scores a
        *different* slice and must receive exactly that slice's oracle
        answer — misdirected correlation pairing would cross results."""
        _, _, port = live_daemon
        slices = [test_urls[i:i + 5] for i in range(0, 25, 5)]

        async def run():
            client = AsyncDaemonClient(("127.0.0.1", port), retry=FAST)
            try:
                results = await asyncio.gather(
                    *(client.adecisions(chunk) for chunk in slices)
                )
            finally:
                await client.aclose()
            assert client.connections_opened == 1
            return results

        results = asyncio.run(run())
        for chunk, result in zip(slices, results):
            expected = {
                language.value: values
                for language, values
                in identifier._sparse_decisions(chunk).items()
            }
            assert result == expected

    def test_interleaved_ops_multiplex_correctly(self, live_daemon):
        _, _, port = live_daemon

        async def run():
            async with AsyncDaemonClient(("127.0.0.1", port)) as client:
                pings, statuses = await asyncio.gather(
                    asyncio.gather(*(client.aping() for _ in range(10))),
                    asyncio.gather(*(client.astatus() for _ in range(10))),
                )
                assert all(pings)
                assert all(s["model"]["name"] == "NB/words"
                           for s in statuses)
                assert client.connections_opened == 1

        asyncio.run(run())

    def test_cancellation_mid_request_leaves_the_client_usable(self):
        """Cancel a caller while its request sits unanswered: the
        coroutine observes CancelledError, the pending map is cleaned
        so the cid cannot be mispaired, and the next request on a fresh
        connection succeeds."""
        done = threading.Event()

        def silent_then_ok(listener):
            connection, _ = listener.accept()
            with connection:
                recv_frame(connection)  # swallow, never answer
                done.wait(timeout=30)
            connection2, _ = listener.accept()
            with connection2:
                message, _ = recv_frame(connection2)
                send_message(connection2, {"v": 1, "ok": True, "pong": True})

        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory(prefix="aio-cx-") as root:
            path = str(Path(root) / "silent.sock")
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(path)
            listener.listen(2)
            server = threading.Thread(
                target=silent_then_ok, args=(listener,), daemon=True
            )
            server.start()

            async def run():
                client = AsyncDaemonClient(
                    path, retry=RetryPolicy(retries=0, backoff=0.01)
                )
                try:
                    task = asyncio.get_running_loop().create_task(
                        client.aping()
                    )
                    await asyncio.sleep(0.3)  # request is on the wire
                    task.cancel()
                    with pytest.raises(asyncio.CancelledError):
                        await task
                    assert client._pending == {}
                    await client._drop_connection()
                    done.set()
                    assert await client.aping() is True
                finally:
                    await client.aclose()

            try:
                asyncio.run(run())
            finally:
                done.set()
                listener.close()
                server.join(timeout=10)


class TestAsyncRetryMatrix:
    """The scripted-server matrix from the robustness suite, re-run
    against the async client: same scripts, same assertions."""

    def run_request(self, server_path, coroutine_factory):
        async def run():
            client = AsyncDaemonClient(server_path, retry=FAST)
            try:
                return await coroutine_factory(client)
            finally:
                await client.aclose()

        return asyncio.run(run())

    def test_retryable_refusals_retried_to_success(self, scripted):
        server = scripted(["overloaded", "shutting-down", "ok"])
        assert self.run_request(server.path, lambda c: c.aping()) is True
        ops = [message["op"] for message, _ in server.requests]
        assert ops == ["ping", "ping", "ping"]
        assert server.requests[1][0]["attempt"] == 2
        assert server.requests[2][0]["attempt"] == 3

    def test_terminal_refusal_not_retried(self, scripted):
        server = scripted(["bad-request", "ok"])
        with pytest.raises(DaemonRequestError) as caught:
            self.run_request(server.path, lambda c: c.astatus())
        assert caught.value.code == "bad-request"
        assert len(server.requests) == 1

    def test_deadline_exceeded_not_retried(self, scripted):
        server = scripted(["deadline-exceeded", "ok"])
        with pytest.raises(DaemonRequestError) as caught:
            self.run_request(
                server.path, lambda c: c.adecisions(["http://a.de/x"])
            )
        assert caught.value.code == "deadline-exceeded"
        assert len(server.requests) == 1

    def test_torn_frame_retried_on_fresh_connection(self, scripted):
        server = scripted(["torn", "ok"])

        async def run():
            client = AsyncDaemonClient(server.path, retry=FAST)
            try:
                assert await client.aping() is True
                assert client.connections_opened == 2
            finally:
                await client.aclose()

        asyncio.run(run())
        assert len(server.requests) == 2

    def test_connection_reset_retried(self, scripted):
        server = scripted(["reset", "ok"])
        assert self.run_request(server.path, lambda c: c.aping()) is True
        assert len(server.requests) == 2

    def test_budget_exhaustion_surfaces_typed_error(self, scripted):
        server = scripted(["overloaded"] * 3)
        policy = RetryPolicy(retries=2, backoff=0.01, backoff_max=0.02)

        async def run():
            async with AsyncDaemonClient(server.path, retry=policy) as c:
                await c.aping()

        with pytest.raises(DaemonRequestError) as caught:
            asyncio.run(run())
        assert caught.value.code == "overloaded"
        assert len(server.requests) == 3

    def test_non_idempotent_op_never_retried(self, scripted):
        server = scripted(["overloaded", "ok"])
        with pytest.raises(DaemonRequestError) as caught:
            self.run_request(server.path, lambda c: c.astop())
        assert caught.value.code == "overloaded"
        assert len(server.requests) == 1

    def test_zero_retries_disables_retrying(self, scripted):
        server = scripted(["overloaded", "ok"])
        policy = RetryPolicy(retries=0, backoff=0.01)

        async def run():
            async with AsyncDaemonClient(server.path, retry=policy) as c:
                await c.aping()

        with pytest.raises(DaemonRequestError):
            asyncio.run(run())
        assert len(server.requests) == 1

    def test_deadline_propagates_in_frame_header(self, scripted):
        server = scripted(["ok"])
        policy = RetryPolicy(retries=0, backoff=0.01, deadline=5.0)

        async def run():
            async with AsyncDaemonClient(server.path, retry=policy) as c:
                await c.aping()

        asyncio.run(run())
        (_, deadline_ms), = server.requests
        assert deadline_ms is not None
        assert 0 < deadline_ms <= 5000

    def test_no_deadline_means_no_header_budget(self, scripted):
        server = scripted(["ok"])
        assert self.run_request(server.path, lambda c: c.aping()) is True
        (_, deadline_ms), = server.requests
        assert deadline_ms is None

    def test_deadline_bounds_total_retry_time(self, scripted):
        import time

        server = scripted(["overloaded"] * 50)
        policy = RetryPolicy(
            retries=50, backoff=0.05, backoff_max=0.05, deadline=0.3
        )
        started = time.monotonic()

        async def run():
            async with AsyncDaemonClient(server.path, retry=policy) as c:
                await c.aping()

        with pytest.raises(DaemonRequestError):
            asyncio.run(run())
        assert time.monotonic() - started < 2.0
        assert len(server.requests) < 20

    def test_connection_refusal_fails_fast(self, sockpath):
        import time

        started = time.monotonic()

        async def run():
            client = AsyncDaemonClient(
                sockpath("never.sock"), timeout=2.0, retry=FAST
            )
            try:
                await client.aping()
            finally:
                await client.aclose()

        with pytest.raises(DaemonUnavailableError):
            asyncio.run(run())
        assert time.monotonic() - started < 1.0


@pytest.fixture()
def scripted(sockpath):
    servers = []

    def factory(script):
        server = ScriptedServer(sockpath(f"a{len(servers)}.sock"), script)
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.close()


class TestAsyncRemoteIdentifierSurface:
    def test_ascores_many_matches_sync_scores(
        self, live_daemon, identifier, test_urls
    ):
        _, socket_path, _ = live_daemon

        async def run():
            async with AsyncRemoteIdentifier.connect(socket_path) as model:
                return await model.ascores_many(test_urls)

        assert asyncio.run(run()) == identifier.scores_many(test_urls)

    def test_name_is_lazy_then_cached(self, live_daemon):
        _, socket_path, _ = live_daemon

        async def run():
            model = AsyncRemoteIdentifier.connect(socket_path)
            try:
                assert model.name == "remote"  # nothing fetched yet
                await model.acapabilities()
                assert model.name == "NB/words"
            finally:
                await model.aclose()

        asyncio.run(run())
