"""Per-scheme handle options and portable handles (worker re-open)."""

from __future__ import annotations

import os
from urllib.parse import quote

import pytest

from repro.api import (
    InvalidHandleError,
    daemon_socket_path,
    open_model,
    portable_handle,
    resolve_artifact_path,
)
from repro.core.pipeline import LanguageIdentifier
from repro.store import ModelStore


@pytest.fixture(scope="module")
def stored_model(small_train, tmp_path_factory):
    """``(root, name, identifier)`` of a model saved into a store."""
    identifier = LanguageIdentifier("words", "NB", seed=0).fit(
        small_train.subsample(0.3, seed=4)
    )
    root = tmp_path_factory.mktemp("options-store")
    ModelStore(root).save(identifier, "opts")
    return root, "opts", identifier


class TestStoreRootOption:
    def test_root_option_resolves_without_env(
        self, stored_model, monkeypatch
    ):
        root, name, identifier = stored_model
        monkeypatch.delenv("REPRO_MODEL_STORE", raising=False)
        monkeypatch.chdir(root.parent)  # no ./models here either
        handle = f"store://{name}?root={quote(str(root))}"
        with open_model(handle) as predictor:
            urls = ["http://www.blumen.de/garten"]
            assert predictor.decisions(urls) == identifier.decisions(urls)

    def test_root_option_beats_argument_and_env(
        self, stored_model, tmp_path, monkeypatch
    ):
        root, name, _ = stored_model
        monkeypatch.setenv("REPRO_MODEL_STORE", str(tmp_path / "wrong"))
        handle = f"store://{name}?root={quote(str(root))}"
        path = resolve_artifact_path(handle, store_root=tmp_path / "wrong2")
        assert path == str(ModelStore(root).path(name))

    def test_unknown_option_refused(self, stored_model):
        root, name, _ = stored_model
        with pytest.raises(InvalidHandleError, match="unknown store://"):
            open_model(f"store://{name}?compression=zstd")

    def test_duplicate_option_refused(self):
        with pytest.raises(InvalidHandleError, match="given twice"):
            open_model("store://m?root=/a&root=/b")


class TestDaemonOptions:
    def test_socket_path_strips_options(self):
        assert daemon_socket_path("repro://a/b.sock?timeout=5") == "a/b.sock"

    def test_bad_timeout_refused(self):
        with pytest.raises(InvalidHandleError, match="timeout"):
            open_model("repro://x.sock?timeout=soon")

    @pytest.mark.parametrize("value", ["-5", "0", "nan", "inf"])
    def test_unusable_timeout_values_refused_typed(self, value):
        # Parseable-but-invalid values must raise the typed error, not
        # socket.settimeout's raw ValueError (CLI callers catch only
        # the ResolveError hierarchy).
        with pytest.raises(InvalidHandleError, match="positive number"):
            open_model(f"repro://x.sock?timeout={value}")

    def test_unknown_option_refused(self):
        with pytest.raises(InvalidHandleError, match="unknown repro://"):
            daemon_socket_path("repro://x.sock?compression=zstd")

    def test_retry_options_strip_from_socket_path(self):
        handle = "repro://a/b.sock?retries=3&backoff=0.1&deadline=2"
        assert daemon_socket_path(handle) == "a/b.sock"

    @pytest.mark.parametrize("option", ["retries=-1", "retries=soon"])
    def test_bad_retries_refused_typed(self, option):
        with pytest.raises(InvalidHandleError, match="retries"):
            open_model(f"repro://x.sock?{option}")

    @pytest.mark.parametrize("option", [
        "backoff=0", "backoff=nan", "deadline=-2", "deadline=inf",
    ])
    def test_bad_retry_seconds_refused_typed(self, option):
        with pytest.raises(InvalidHandleError, match="positive number"):
            open_model(f"repro://x.sock?{option}")


class TestPortableHandle:
    def test_path_becomes_absolute(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert portable_handle("m.urlmodel") == str(tmp_path / "m.urlmodel")
        assert portable_handle(
            tmp_path / "m.urlmodel"
        ) == str(tmp_path / "m.urlmodel")

    def test_store_handle_pins_resolved_root(
        self, stored_model, monkeypatch
    ):
        root, name, identifier = stored_model
        portable = portable_handle(f"store://{name}", store_root=root)
        assert portable == f"store://{name}?root={quote(str(root))}"
        # the portable string alone re-opens the model anywhere
        monkeypatch.delenv("REPRO_MODEL_STORE", raising=False)
        monkeypatch.chdir(root.parent)
        with open_model(portable) as predictor:
            assert predictor.name == identifier.name

    def test_store_handle_keeps_existing_root_option(self, stored_model):
        root, name, _ = stored_model
        original = f"store://{name}?root={quote(str(root))}"
        assert portable_handle(original, store_root="/elsewhere") == original

    def test_env_root_is_pinned(self, stored_model, monkeypatch):
        root, name, _ = stored_model
        monkeypatch.setenv("REPRO_MODEL_STORE", str(root))
        assert portable_handle(f"store://{name}") == (
            f"store://{name}?root={quote(str(root))}"
        )

    def test_daemon_socket_paths_become_absolute(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert portable_handle("repro://x.sock") == (
            f"repro://{tmp_path / 'x.sock'}"
        )
        assert portable_handle("repro://x.sock?timeout=5") == (
            f"repro://{tmp_path / 'x.sock'}?timeout=5"
        )
        assert portable_handle("repro:///run/r.sock") == "repro:///run/r.sock"

    def test_live_objects_refused(self, stored_model):
        _, _, identifier = stored_model
        with pytest.raises(TypeError, match="portable form"):
            portable_handle(identifier)


class TestVersionPinWithOptions:
    def test_checksum_pin_and_root_combine(self, stored_model):
        root, name, _ = stored_model
        checksum = ModelStore(root).describe(name).checksum
        handle = (
            f"store://{name}@{checksum[:12]}?root={quote(str(root))}"
        )
        assert resolve_artifact_path(handle) == str(
            ModelStore(root).path(name)
        )
        with pytest.raises(Exception, match="does not match"):
            resolve_artifact_path(
                f"store://{name}@{'f' * 12}?root={quote(str(root))}"
            )
