"""The Predictor protocol surface: conformance, lifecycle, typed results,
and the deprecation shims on the old entry points.
"""

from __future__ import annotations

import pytest

from repro.api import (
    BatchResult,
    Capabilities,
    ModelInfo,
    Prediction,
    Predictor,
    open_model,
    predict_iter,
)
from repro.core.pipeline import LanguageIdentifier
from repro.languages import LANGUAGES, Language
from repro.store import save_identifier
from repro.store.serve import score_batch


@pytest.fixture(scope="module")
def identifier(small_train):
    return LanguageIdentifier("words", "NB", seed=0).fit(
        small_train.subsample(0.3, seed=4)
    )


@pytest.fixture(scope="module")
def artifact_path(tmp_path_factory, identifier):
    path = tmp_path_factory.mktemp("proto-models") / "model.urlmodel"
    save_identifier(identifier, path)
    return path


@pytest.fixture(scope="module")
def urls(small_bundle):
    return small_bundle.odp_test.urls[:40]


class TestConformance:
    def test_every_backend_is_a_predictor(self, identifier, artifact_path):
        from repro.store.client import RemoteIdentifier

        assert isinstance(identifier, Predictor)
        assert isinstance(open_model(artifact_path), Predictor)
        # isinstance() would probe `name`, whose lazy fetch dials the
        # daemon — assert the protocol members on the class instead.
        for member in (
            "predict", "predict_iter", "decisions", "scores_many",
            "scores", "capabilities", "close", "__enter__", "__exit__",
            "name",
        ):
            assert hasattr(RemoteIdentifier, member), member

    def test_baseline_identifier_conforms_too(self, urls):
        baseline = LanguageIdentifier(algorithm="ccTLD")
        assert isinstance(baseline, Predictor)
        result = baseline.predict(urls)
        assert result.decisions == baseline.decisions(urls)
        assert result.model.backend == "sparse"

    def test_context_manager_lifecycle(self, artifact_path, urls):
        with open_model(artifact_path) as model:
            assert model.predict(urls[:3]).urls == tuple(urls[:3])
        model.close()  # idempotent


class TestCapabilities:
    def test_fitted_identifier(self, identifier):
        capabilities = identifier.capabilities()
        assert isinstance(capabilities, Capabilities)
        assert capabilities.compiled and not capabilities.remote
        assert capabilities.model.backend == "compiled"
        assert capabilities.model.languages == tuple(LANGUAGES)
        assert capabilities.model.train_corpus is not None
        assert capabilities.model.created_at is None  # never saved

    def test_serving_identifier_carries_rollout(self, artifact_path):
        capabilities = open_model(artifact_path).capabilities()
        assert capabilities.model.created_at is not None  # save stamp
        assert capabilities.model.train_corpus is not None
        assert capabilities.batch and capabilities.streaming

    def test_sparse_identifier(self, small_train):
        sparse = LanguageIdentifier(
            "words", "NB", backend="sparse"
        ).fit(small_train.subsample(0.2, seed=1))
        capabilities = sparse.capabilities()
        assert not capabilities.compiled
        assert capabilities.model.backend == "sparse"


class TestTypedResults:
    def test_prediction_tsv_matches_serving_rows(self, identifier, urls):
        """The typed rows print byte-identically to the serving layer's
        ServedUrl rows — the CLI output format is one format."""
        served = [row.tsv() for row in score_batch(identifier, urls)]
        predicted = [p.tsv() for p in identifier.predict(urls)]
        assert predicted == served

    def test_batch_result_shape(self, identifier, urls):
        result = identifier.predict(urls)
        assert isinstance(result, BatchResult)
        assert isinstance(result.model, ModelInfo)
        assert len(result) == len(urls)
        assert set(result.scores) == set(LANGUAGES)
        first, last = result[0], result[-1]
        assert isinstance(first, Prediction)
        assert last.url == urls[-1]
        with pytest.raises(IndexError):
            result[len(urls)]

    def test_positives_sorted_by_code(self, identifier, urls):
        for prediction in identifier.predict(urls):
            codes = [language.value for language in prediction.positives]
            assert codes == sorted(codes)
            for language, score in prediction.scores.items():
                assert isinstance(language, Language)
                assert (score > 0.0) == (language in prediction.positives)


class TestStreamingHelper:
    def test_module_level_predict_iter(self, identifier, urls):
        streamed = list(predict_iter(identifier, iter(urls), chunk_size=11))
        assert [p.url for p in streamed] == list(urls)

    def test_chunk_size_validated_eagerly(self, identifier, urls):
        with pytest.raises(ValueError, match="chunk_size"):
            predict_iter(identifier, urls, chunk_size=0)  # before iteration
        with pytest.raises(ValueError, match="chunk_size"):
            identifier.predict_iter(urls, chunk_size=-1)

    def test_empty_input(self, identifier):
        assert list(identifier.predict_iter(iter(()))) == []


class TestDeprecationShims:
    def test_crawler_resolve_identifier_warns(self, identifier):
        from repro.crawler import resolve_identifier

        with pytest.warns(DeprecationWarning, match="open_model"):
            assert resolve_identifier(identifier) is identifier

    def test_resolve_serving_handle_warns(self):
        from repro.store.client import resolve_serving_handle

        with pytest.warns(DeprecationWarning, match="open_model"):
            remote = resolve_serving_handle("repro://lazy.sock")
        assert remote.client.socket_path == "lazy.sock"

    def test_client_parse_helpers_delegate(self):
        from repro.api import InvalidHandleError
        from repro.store.client import is_handle, parse_handle

        assert is_handle("repro://a.sock") and not is_handle("a.sock")
        assert parse_handle("repro:///run/x.sock") == "/run/x.sock"
        with pytest.raises(InvalidHandleError):
            parse_handle("repro://")
