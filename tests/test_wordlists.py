"""Tests for the embedded lexicon substrate."""

import re

from repro.data.wordlists import all_lexicons, get_lexicon
from repro.data.wordlists.web import (
    FILE_EXTENSIONS,
    GENERIC_SEGMENTS,
    SECOND_LEVEL,
    SHARED_HOSTS,
    TECH_WORDS,
)
from repro.languages import LANGUAGES, Language

URL_SAFE = re.compile(r"[a-z][a-z-]*")


class TestLexicons:
    def test_all_five_available(self):
        lexicons = all_lexicons()
        assert set(lexicons) == set(LANGUAGES)

    def test_substantial_vocabulary(self):
        for language in LANGUAGES:
            lexicon = get_lexicon(language)
            assert len(lexicon.common_words) >= 200, language
            assert len(lexicon.cities) >= 80, language

    def test_exactly_ten_stopwords(self):
        # The SER query mode compiles "lists of 10 stop words specific to
        # each language" (Section 4.1).
        for language in LANGUAGES:
            assert len(get_lexicon(language).stopwords) == 10

    def test_stopwords_in_vocabulary(self):
        for language in LANGUAGES:
            lexicon = get_lexicon(language)
            for stopword in lexicon.stopwords:
                assert stopword in lexicon.common_words, (language, stopword)

    def test_url_safe_tokens(self):
        # Every word must survive the URL tokenizer unchanged.
        for language in LANGUAGES:
            lexicon = get_lexicon(language)
            for word in list(lexicon.common_words) + list(lexicon.cities):
                assert URL_SAFE.fullmatch(word), (language, word)
                assert len(word) >= 2, (language, word)

    def test_membership_protocol(self):
        german = get_lexicon("de")
        assert "strasse" in german  # common word
        assert "berlin" in german  # city
        assert "weather" not in german

    def test_sampling_tuples_match_sets(self):
        for language in LANGUAGES:
            lexicon = get_lexicon(language)
            assert set(lexicon.word_tuple) == lexicon.common_words
            assert set(lexicon.city_tuple) == lexicon.cities

    def test_distinctive_words_unique(self):
        """Signature words must belong to exactly one lexicon; without
        them neither the human model nor the dictionaries could work."""
        signatures = {
            Language.GERMAN: "oeffnungszeiten",
            Language.FRENCH: "recherche",
            Language.SPANISH: "ayuntamiento",
            Language.ITALIAN: "benvenuti",
            Language.ENGLISH: "weather",
        }
        for owner, word in signatures.items():
            holders = [
                language
                for language in LANGUAGES
                if word in get_lexicon(language).common_words
            ]
            assert holders == [owner], (word, holders)

    def test_paper_provider_examples(self):
        # arcor (German), galeon (Spanish) and splinder (Italian) are the
        # paper's own examples of language-revealing hosts.
        assert "arcor" in get_lexicon("de").providers
        assert "galeon" in get_lexicon("es").providers
        assert "splinder" in get_lexicon("it").providers


class TestWebVocabulary:
    def test_tech_words_nonempty_and_safe(self):
        assert len(TECH_WORDS) > 50
        for word in TECH_WORDS:
            assert URL_SAFE.fullmatch(word)

    def test_shared_hosts(self):
        assert "wordpress" in SHARED_HOSTS  # the paper's Section 6 example

    def test_extensions_lowercase(self):
        assert all(ext.isalnum() for ext in FILE_EXTENSIONS)
        assert "html" in FILE_EXTENSIONS

    def test_second_level_targets_known_cctlds(self):
        from repro.languages import all_known_cctlds

        for tld in SECOND_LEVEL:
            assert tld in all_known_cctlds()

    def test_generic_segments_safe(self):
        for segment in GENERIC_SEGMENTS:
            assert re.fullmatch(r"[a-z0-9-]+", segment)
