"""Test package."""
