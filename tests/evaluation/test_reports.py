"""Tests for report rendering."""

from repro.evaluation.metrics import BinaryMetrics
from repro.evaluation.reports import (
    f_measure_grid,
    format_metric,
    language_label,
    metrics_table,
)


class TestFormatMetric:
    def test_paper_style(self):
        assert format_metric(0.9) == ".90"
        assert format_metric(0.675) == ".68"  # rounded
        assert format_metric(1.0) == "1.0"
        assert format_metric(0.999) == "1.0"
        assert format_metric(0.0) == ".00"


class TestMetricsTable:
    def test_rows_and_average(self):
        metrics = BinaryMetrics(10, 10, 9, 9)
        text = metrics_table(
            [("German", metrics), ("French", metrics)], title="T"
        )
        assert text.startswith("T")
        assert "German" in text and "French" in text
        assert "Average" in text
        assert "p(-|-)" in text

    def test_without_average(self):
        metrics = BinaryMetrics(10, 10, 9, 9)
        text = metrics_table([("X", metrics)], with_average=False)
        assert "Average" not in text


class TestFMeasureGrid:
    def test_grid_cells(self):
        cells = {("A", "c1"): 0.5, ("A", "c2"): 0.7, ("B", "c1"): 0.9, ("B", "c2"): 0.1}
        text = f_measure_grid(cells, ["A", "B"], ["c1", "c2"], title="G")
        assert text.startswith("G")
        assert ".50" in text and ".90" in text
        assert "Average" in text

    def test_grid_averages(self):
        cells = {("A", "c1"): 1.0, ("A", "c2"): 0.0}
        text = f_measure_grid(cells, ["A"], ["c1", "c2"])
        assert ".50" in text  # row average


class TestLanguageLabel:
    def test_labels(self):
        assert language_label("en") == "En."
        assert language_label("de") == "Ge."  # the paper's "Ge." for German
        assert language_label("es") == "Sp."
