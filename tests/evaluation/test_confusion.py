"""Tests for the paper-format confusion matrix."""

import pytest

from repro.evaluation.confusion import ConfusionMatrix, confusion_matrix
from repro.languages import LANGUAGES, Language

EN, DE, FR = Language.ENGLISH, Language.GERMAN, Language.FRENCH


class TestConfusionMatrix:
    def _simple(self):
        truths = [EN, EN, DE, DE]
        decisions = {
            EN: [True, True, True, False],   # English clf: both EN + 1 DE
            DE: [False, False, True, True],  # German clf: both DE
            FR: [False] * 4,
            Language.SPANISH: [False] * 4,
            Language.ITALIAN: [False] * 4,
        }
        return confusion_matrix(truths, decisions)

    def test_diagonal_is_recall(self):
        matrix = self._simple()
        assert matrix.percentage(EN, EN) == 100.0
        assert matrix.recall(DE) == 1.0

    def test_off_diagonal(self):
        matrix = self._simple()
        assert matrix.percentage(DE, EN) == 50.0
        assert matrix.percentage(EN, DE) == 0.0

    def test_rows_may_exceed_100(self):
        # A URL classified as two languages simultaneously.
        truths = [EN]
        decisions = {lang: [True] for lang in LANGUAGES}
        matrix = confusion_matrix(truths, decisions)
        total = sum(matrix.percentage(EN, lang) for lang in LANGUAGES)
        assert total == 500.0

    def test_row_counts(self):
        matrix = self._simple()
        assert matrix.row_counts[EN] == 2
        assert matrix.row_counts[FR] == 0

    def test_missing_cells_zero(self):
        matrix = ConfusionMatrix()
        assert matrix.percentage("en", "de") == 0.0

    def test_format_contains_languages(self):
        text = self._simple().format(title="T")
        assert text.startswith("T")
        for lang in LANGUAGES:
            assert lang.display_name[:7] in text or lang.display_name[:8] in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix([EN], {EN: [True, False]})

    def test_string_language_keys_coerced(self):
        matrix = confusion_matrix(
            [EN], {lang: [lang is EN] for lang in LANGUAGES}
        )
        assert matrix.percentage("en", "en") == 100.0
