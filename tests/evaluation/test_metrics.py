"""Tests for the Section 4.2 evaluation measures."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evaluation.metrics import (
    BinaryMetrics,
    average_f,
    correlation_coefficient,
    evaluate_binary,
    f_measure,
    macro_average,
)


class TestBinaryMetrics:
    def test_hand_computed(self):
        metrics = BinaryMetrics(
            n_positive=10, n_negative=20, true_positives=8, true_negatives=18
        )
        assert metrics.recall == 0.8
        assert metrics.negative_success_ratio == 0.9
        # balanced P = .8 / (.8 + .1)
        assert metrics.balanced_precision == pytest.approx(0.8 / 0.9)
        assert metrics.f_measure == pytest.approx(
            2 / (1 / 0.8 + 0.9 / 0.8)
        )

    def test_paper_balanced_precision_formula(self):
        """P = n+ p(+|+) / (n+ p(+|+) + n- (1 - p(-|-))) with n+ = n-."""
        metrics = BinaryMetrics(
            n_positive=100, n_negative=300, true_positives=70, true_negatives=270
        )
        recall = metrics.recall
        nsr = metrics.negative_success_ratio
        n = 1000  # any balanced n+ = n- cancels out
        expected = (n * recall) / (n * recall + n * (1 - nsr))
        assert metrics.balanced_precision == pytest.approx(expected)

    def test_raw_precision_differs_when_unbalanced(self):
        metrics = BinaryMetrics(
            n_positive=10, n_negative=1000, true_positives=10, true_negatives=900
        )
        assert metrics.raw_precision == pytest.approx(10 / 110)
        assert metrics.balanced_precision == pytest.approx(1.0 / 1.1)

    def test_trivial_always_yes(self):
        metrics = evaluate_binary([True] * 10, [True] * 5 + [False] * 5)
        assert metrics.recall == 1.0
        assert metrics.balanced_precision == 0.5
        assert metrics.f_measure == pytest.approx(2 / 3)

    def test_trivial_always_no(self):
        metrics = evaluate_binary([False] * 10, [True] * 5 + [False] * 5)
        assert metrics.recall == 0.0
        assert metrics.negative_success_ratio == 1.0
        assert metrics.f_measure == 0.0

    def test_perfect_classifier(self):
        truths = [True, False, True, False]
        metrics = evaluate_binary(truths, truths)
        assert metrics.f_measure == 1.0
        assert metrics.accuracy == 1.0

    def test_empty_edge_cases(self):
        metrics = BinaryMetrics(0, 0, 0, 0)
        assert metrics.recall == 0.0
        assert metrics.negative_success_ratio == 1.0
        assert metrics.accuracy == 0.0

    def test_as_row(self):
        metrics = BinaryMetrics(10, 10, 9, 8)
        row = metrics.as_row()
        assert set(row) == {"P", "R", "p(-|-)", "F"}
        assert row["R"] == metrics.recall

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            evaluate_binary([True], [True, False])


class TestMetricsProperties:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.booleans()), min_size=4, max_size=200
        ).filter(
            lambda pairs: any(t for _, t in pairs) and any(not t for _, t in pairs)
        )
    )
    def test_f_between_zero_and_one(self, pairs):
        predictions = [p for p, _ in pairs]
        truths = [t for _, t in pairs]
        metrics = evaluate_binary(predictions, truths)
        assert 0.0 <= metrics.f_measure <= 1.0
        assert 0.0 <= metrics.balanced_precision <= 1.0
        assert 0.0 <= metrics.recall <= 1.0

    @given(
        st.floats(min_value=0.01, max_value=1.0),
        st.floats(min_value=0.01, max_value=1.0),
    )
    def test_f_is_harmonic_mean(self, recall, precision):
        f = f_measure(recall, precision)
        assert min(recall, precision) - 1e-9 <= f <= max(recall, precision) + 1e-9
        assert f == pytest.approx(2 * recall * precision / (recall + precision))

    def test_f_zero_edges(self):
        assert f_measure(0.0, 1.0) == 0.0
        assert f_measure(1.0, 0.0) == 0.0


class TestCorrelation:
    def test_identical_sequences(self):
        seq = [True, False, True, True, False]
        assert correlation_coefficient(seq, seq) == pytest.approx(1.0)

    def test_opposite_sequences(self):
        first = [True, False, True, False]
        second = [False, True, False, True]
        assert correlation_coefficient(first, second) == pytest.approx(-1.0)

    def test_constant_sequence_zero(self):
        assert correlation_coefficient([True, True], [True, False]) == 0.0

    def test_empty(self):
        assert correlation_coefficient([], []) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            correlation_coefficient([True], [True, False])

    def test_known_value(self):
        first = [True, True, False, False]
        second = [True, False, True, False]
        assert correlation_coefficient(first, second) == pytest.approx(0.0)


class TestAverages:
    def test_average_f(self):
        metrics = [
            BinaryMetrics(10, 10, 10, 10),  # F = 1.0
            BinaryMetrics(10, 10, 0, 10),  # F = 0.0
        ]
        assert average_f(metrics) == pytest.approx(0.5)

    def test_average_f_empty(self):
        assert average_f([]) == 0.0

    def test_macro_average(self):
        rows = [{"a": 1.0, "b": 0.0}, {"a": 0.0, "b": 1.0}]
        assert macro_average(rows) == {"a": 0.5, "b": 0.5}

    def test_macro_average_empty(self):
        assert macro_average([]) == {}
