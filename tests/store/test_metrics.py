"""Request metrics: the histogram/counter blocks behind ``serve
status`` and the bulk engine's progress reporting."""

from __future__ import annotations

import pytest

from repro.store.metrics import (
    BUCKET_BOUNDS_MS,
    LatencyHistogram,
    RequestMetrics,
)


class TestLatencyHistogram:
    def test_observe_lands_in_log_buckets(self):
        histogram = LatencyHistogram()
        histogram.observe(0.0004)  # 0.4ms -> first bucket (<= 0.5)
        histogram.observe(0.003)  # 3ms -> <= 5 bucket
        histogram.observe(99.0)  # 99s -> overflow
        assert histogram.count == 3
        assert histogram.counts[0] == 1
        assert histogram.counts[BUCKET_BOUNDS_MS.index(5.0)] == 1
        assert histogram.counts[-1] == 1

    def test_merge_sums_counts_and_totals(self):
        left, right = LatencyHistogram(), LatencyHistogram()
        left.observe(0.001)
        right.observe(0.001)
        right.observe(1.0)
        left.merge(right)
        assert left.count == 3
        assert left.total_ms == pytest.approx(1002.0)

    def test_snapshot_roundtrip(self):
        histogram = LatencyHistogram()
        for seconds in (0.0001, 0.002, 0.02, 0.5):
            histogram.observe(seconds)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 4
        assert snapshot["mean_ms"] == pytest.approx(
            histogram.total_ms / 4
        )
        rebuilt = LatencyHistogram.from_snapshot(snapshot)
        assert rebuilt.counts == histogram.counts
        assert rebuilt.snapshot()["count"] == 4

    def test_snapshot_overflow_quantiles_stay_json_valid(self):
        import json

        histogram = LatencyHistogram()
        histogram.observe(99.0)  # overflow bucket: quantile() says inf
        snapshot = histogram.snapshot()
        assert snapshot["p50_ms"] is None and snapshot["p99_ms"] is None
        json.loads(json.dumps(snapshot, allow_nan=False))  # strict JSON

    def test_quantiles_are_bucket_bounds(self):
        histogram = LatencyHistogram()
        for _ in range(99):
            histogram.observe(0.0008)  # 0.8ms -> <= 1ms bucket
        histogram.observe(0.040)  # 40ms -> <= 50ms bucket
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(1.0) == 50.0
        assert LatencyHistogram().quantile(0.5) is None
        with pytest.raises(ValueError):
            histogram.quantile(1.5)


class TestRequestMetrics:
    def test_counts_by_op_and_errors(self):
        metrics = RequestMetrics()
        metrics.observe("classify", 0.002)
        metrics.observe("classify", 0.004)
        metrics.observe("score", 0.001, ok=False)
        snapshot = metrics.snapshot()
        assert snapshot["total"] == 3
        assert snapshot["by_op"] == {"classify": 2, "score": 1}
        assert snapshot["errors"] == 1
        assert snapshot["latency_ms"]["count"] == 3
