"""Request metrics: the histogram/counter blocks behind ``serve
status`` and the bulk engine's progress reporting."""

from __future__ import annotations

import multiprocessing

import pytest

from repro.store.metrics import (
    BUCKET_BOUNDS_MS,
    DRIFT_SCORE_BOUNDS,
    DriftCounters,
    HistogramBoundsError,
    LatencyHistogram,
    RequestMetrics,
    RobustnessCounters,
)


class TestLatencyHistogram:
    def test_observe_lands_in_log_buckets(self):
        histogram = LatencyHistogram()
        histogram.observe(0.0004)  # 0.4ms -> first bucket (<= 0.5)
        histogram.observe(0.003)  # 3ms -> <= 5 bucket
        histogram.observe(99.0)  # 99s -> overflow
        assert histogram.count == 3
        assert histogram.counts[0] == 1
        assert histogram.counts[BUCKET_BOUNDS_MS.index(5.0)] == 1
        assert histogram.counts[-1] == 1

    def test_merge_sums_counts_and_totals(self):
        left, right = LatencyHistogram(), LatencyHistogram()
        left.observe(0.001)
        right.observe(0.001)
        right.observe(1.0)
        left.merge(right)
        assert left.count == 3
        assert left.total_ms == pytest.approx(1002.0)

    def test_snapshot_roundtrip(self):
        histogram = LatencyHistogram()
        for seconds in (0.0001, 0.002, 0.02, 0.5):
            histogram.observe(seconds)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 4
        assert snapshot["mean_ms"] == pytest.approx(
            histogram.total_ms / 4
        )
        rebuilt = LatencyHistogram.from_snapshot(snapshot)
        assert rebuilt.counts == histogram.counts
        assert rebuilt.snapshot()["count"] == 4

    def test_snapshot_overflow_quantiles_stay_json_valid(self):
        import json

        histogram = LatencyHistogram()
        histogram.observe(99.0)  # overflow bucket: quantile() says inf
        snapshot = histogram.snapshot()
        assert snapshot["p50_ms"] is None and snapshot["p99_ms"] is None
        json.loads(json.dumps(snapshot, allow_nan=False))  # strict JSON

    def test_snapshot_surfaces_bucket_bounds(self):
        snapshot = LatencyHistogram().snapshot()
        assert snapshot["bounds_ms"] == list(BUCKET_BOUNDS_MS)

    def test_merge_refuses_mismatched_bounds(self):
        ours = LatencyHistogram()
        foreign = LatencyHistogram.from_snapshot({
            "bounds_ms": [1.0, 10.0],
            "counts": [1, 2, 3],
            "count": 6,
            "mean_ms": 4.0,
        })
        assert foreign.bounds == (1.0, 10.0)  # snapshot's own bounds kept
        with pytest.raises(HistogramBoundsError):
            ours.merge(foreign)
        ours.merge(LatencyHistogram())  # same bounds still merge fine

    def test_quantiles_are_bucket_bounds(self):
        histogram = LatencyHistogram()
        for _ in range(99):
            histogram.observe(0.0008)  # 0.8ms -> <= 1ms bucket
        histogram.observe(0.040)  # 40ms -> <= 50ms bucket
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(1.0) == 50.0
        assert LatencyHistogram().quantile(0.5) is None
        with pytest.raises(ValueError):
            histogram.quantile(1.5)


class TestRequestMetrics:
    def test_counts_by_op_and_errors(self):
        metrics = RequestMetrics()
        metrics.observe("classify", 0.002)
        metrics.observe("classify", 0.004)
        metrics.observe("score", 0.001, ok=False)
        snapshot = metrics.snapshot()
        assert snapshot["total"] == 3
        assert snapshot["by_op"] == {"classify": 2, "score": 1}
        assert snapshot["errors"] == 1
        assert snapshot["latency_ms"]["count"] == 3


class TestRobustnessCrashAge:
    def test_no_crash_reports_none_for_both_fields(self):
        snapshot = RobustnessCounters().snapshot()
        assert snapshot["last_crash_at"] is None
        assert snapshot["last_crash_age_seconds"] is None

    def test_crash_reports_epoch_and_age(self):
        import time

        counters = RobustnessCounters()
        counters.mark_crash(time.time() - 5.0)
        snapshot = counters.snapshot()
        assert snapshot["last_crash_at"] == pytest.approx(
            time.time() - 5.0, abs=1.0
        )
        assert 4.0 <= snapshot["last_crash_age_seconds"] <= 7.0

    def test_future_stamped_crash_clamps_age_to_zero(self):
        import time

        counters = RobustnessCounters()
        counters.mark_crash(time.time() + 60.0)  # clock skew
        assert counters.snapshot()["last_crash_age_seconds"] == 0.0


def _drift_observe_batches(drift: DriftCounters, batches: int) -> None:
    for _ in range(batches):
        drift.observe({"en": [1.0, -2.0], "de": [-1.0, 3.0]})


class TestDriftCounters:
    def test_accumulates_decisions_and_scores(self):
        drift = DriftCounters(["en", "de"], window_rows=1000)
        drift.observe({"en": [1.5, -0.2, 3.0], "de": [-1.0, -2.0, 0.5]})
        current = drift.snapshot()["current"]
        assert current["rows"] == 3
        assert current["decisions"] == {"en": 2, "de": 1}
        assert current["decision_rate"]["en"] == pytest.approx(2 / 3)
        assert current["score_mean"]["en"] == pytest.approx(4.3 / 3)

    def test_language_enum_keys_normalise_to_codes(self):
        from repro.languages import Language

        drift = DriftCounters(list(Language), window_rows=1000)
        drift.observe({Language.ENGLISH: [2.0], Language.GERMAN: [-2.0]})
        current = drift.snapshot()["current"]
        assert current["decisions"]["en"] == 1
        assert current["decisions"]["de"] == 0

    def test_unknown_languages_are_ignored(self):
        drift = DriftCounters(["en"], window_rows=1000)
        drift.observe({"xx": [9.0], "en": [1.0]})
        assert drift.snapshot()["current"]["decisions"] == {"en": 1}

    def test_first_window_freezes_the_baseline(self):
        drift = DriftCounters(["en"], window_rows=4)
        drift.observe({"en": [1.0, 1.0, -1.0, -1.0]})  # completes window 1
        snapshot = drift.snapshot()
        assert snapshot["windows_completed"] == 1
        assert snapshot["baseline"]["rows"] == 4
        assert snapshot["baseline"]["decision_rate"]["en"] == 0.5
        assert snapshot["current"]["rows"] == 0
        # Only one completed window: the live current bank is compared.
        assert snapshot["recent_bank"] == "current"

    def test_later_windows_compare_against_frozen_baseline(self):
        drift = DriftCounters(["en"], window_rows=4)
        drift.observe({"en": [1.0, 1.0, -1.0, -1.0]})  # baseline: 50%
        drift.observe({"en": [1.0, 1.0, 1.0, 1.0]})  # window 2: 100%
        snapshot = drift.snapshot()
        assert snapshot["windows_completed"] == 2
        assert snapshot["recent_bank"] == "window"
        assert snapshot["baseline"]["decision_rate"]["en"] == 0.5
        assert snapshot["window"]["decision_rate"]["en"] == 1.0
        entry = snapshot["comparison"]["en"]
        assert entry["rate_delta"] == pytest.approx(0.5)
        assert entry["score_shift"] is not None
        assert snapshot["max_abs_rate_delta"] == pytest.approx(0.5)

    def test_score_buckets_follow_drift_bounds(self):
        drift = DriftCounters(["en"], window_rows=1000)
        drift.observe({"en": [-30.0, 0.25, 30.0]})
        counts = drift.snapshot()["current"]["score_counts"]["en"]
        assert len(counts) == len(DRIFT_SCORE_BOUNDS) + 1
        assert counts[0] == 1  # -30 under the lowest bound
        assert counts[-1] == 1  # +30 in the overflow bucket
        assert sum(counts) == 3

    def test_reset_starts_a_new_baseline(self):
        drift = DriftCounters(["en"], window_rows=2)
        drift.observe({"en": [1.0, 1.0]})
        drift.reset()
        snapshot = drift.snapshot()
        assert snapshot["windows_completed"] == 0
        assert snapshot["baseline"]["rows"] == 0
        assert snapshot["current"]["rows"] == 0
        assert snapshot["max_abs_rate_delta"] is None

    def test_forked_workers_accumulate_into_shared_banks(self):
        drift = DriftCounters(["en", "de"], window_rows=10_000)
        workers = [
            multiprocessing.Process(
                target=_drift_observe_batches, args=(drift, 25)
            )
            for _ in range(4)
        ]
        for process in workers:
            process.start()
        for process in workers:
            process.join()
            assert process.exitcode == 0
        current = drift.snapshot()["current"]
        assert current["rows"] == 4 * 25 * 2
        assert current["decisions"] == {"en": 100, "de": 100}

    def test_window_roll_is_exact_under_fork_concurrency(self):
        # Rolls triggered by whichever worker crosses the boundary must
        # never lose rows: banks always account for every observation.
        drift = DriftCounters(["en"], window_rows=20)
        workers = [
            multiprocessing.Process(
                target=_drift_observe_batches, args=(drift, 30)
            )
            for _ in range(3)
        ]
        for process in workers:
            process.start()
        for process in workers:
            process.join()
            assert process.exitcode == 0
        snapshot = drift.snapshot()
        # 3 workers x 30 batches x 2 rows = 180 rows total; windows of
        # >= 20 rows (a batch can overshoot the boundary) plus the
        # partial current bank must add up exactly.
        rolled = snapshot["windows_completed"]
        assert rolled >= 1
        assert snapshot["baseline"]["rows"] >= 20

    def test_validates_construction(self):
        with pytest.raises(ValueError):
            DriftCounters([])
        with pytest.raises(ValueError):
            DriftCounters(["en"], window_rows=0)
