"""The binary artifact container: layout, alignment, error handling."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.store.format import (
    ALIGNMENT,
    FORMAT_VERSION,
    MAGIC,
    ArtifactChecksumError,
    ArtifactFile,
    ArtifactFormatError,
    ArtifactVersionError,
    is_artifact,
    write_artifact,
)

BUFFERS = {
    "weights": np.arange(12, dtype=np.float64).reshape(3, 4),
    "ranks": np.array([5, -1, 3], dtype=np.int64),
    "blob": np.frombuffer(b"hello\nworld", dtype=np.uint8),
}


@pytest.fixture()
def artifact_path(tmp_path):
    path = tmp_path / "model.urlmodel"
    write_artifact(path, {"kind": "test", "note": 42}, BUFFERS)
    return path


class TestRoundTrip:
    def test_buffers_round_trip_exactly(self, artifact_path):
        artifact = ArtifactFile(artifact_path)
        for name, expected in BUFFERS.items():
            loaded = artifact.buffer(name)
            assert loaded.dtype == expected.dtype
            assert loaded.shape == expected.shape
            assert np.array_equal(loaded, expected)

    def test_model_metadata_round_trips(self, artifact_path):
        artifact = ArtifactFile(artifact_path)
        assert artifact.model == {"kind": "test", "note": 42}
        assert artifact.header["format_version"] == FORMAT_VERSION

    def test_buffers_are_read_only_views(self, artifact_path):
        artifact = ArtifactFile(artifact_path)
        weights = artifact.buffer("weights")
        assert not weights.flags.writeable
        # Zero-copy: the array's memory is the mapping, not a heap copy.
        assert not weights.flags.owndata

    def test_buffer_alignment(self, artifact_path):
        artifact = ArtifactFile(artifact_path)
        for name in artifact.buffer_names:
            entry = artifact.header["buffers"][name]
            assert entry["offset"] % ALIGNMENT == 0

    def test_checksum_verifies(self, artifact_path):
        artifact = ArtifactFile(artifact_path)
        assert artifact.verify() == artifact.checksum

    def test_is_artifact_sniffs_magic(self, artifact_path, tmp_path):
        assert is_artifact(artifact_path)
        other = tmp_path / "not-a-model.bin"
        other.write_bytes(b"something else entirely")
        assert not is_artifact(other)
        assert not is_artifact(tmp_path / "missing.bin")

    def test_empty_buffer_table(self, tmp_path):
        path = tmp_path / "empty.urlmodel"
        write_artifact(path, {"kind": "empty"}, {})
        artifact = ArtifactFile(path)
        assert artifact.buffer_names == ()
        assert artifact.verify()

    def test_big_endian_arrays_are_canonicalised(self, tmp_path):
        path = tmp_path / "be.urlmodel"
        big = np.arange(4, dtype=">f8")
        write_artifact(path, {}, {"weights": big})
        loaded = ArtifactFile(path).buffer("weights")
        assert loaded.dtype == np.dtype("<f8")
        assert np.array_equal(loaded, big)


class TestCorruption:
    def test_bad_magic_rejected(self, artifact_path):
        data = bytearray(artifact_path.read_bytes())
        data[:4] = b"EVIL"
        artifact_path.write_bytes(bytes(data))
        with pytest.raises(ArtifactFormatError, match="not a model artifact"):
            ArtifactFile(artifact_path)

    def test_corrupt_header_json_rejected(self, artifact_path):
        data = bytearray(artifact_path.read_bytes())
        data[len(MAGIC) + 8] = ord("}")  # break the JSON's first byte
        artifact_path.write_bytes(bytes(data))
        with pytest.raises(ArtifactFormatError, match="corrupt artifact header"):
            ArtifactFile(artifact_path)

    def test_truncated_payload_rejected(self, artifact_path):
        data = artifact_path.read_bytes()
        artifact_path.write_bytes(data[: len(data) - 40])
        with pytest.raises(ArtifactFormatError, match="truncated"):
            ArtifactFile(artifact_path)

    def test_version_mismatch_rejected(self, artifact_path):
        raw = artifact_path.read_bytes()
        header_length = int.from_bytes(raw[len(MAGIC) : len(MAGIC) + 8], "little")
        header = json.loads(raw[len(MAGIC) + 8 : len(MAGIC) + 8 + header_length])
        header["format_version"] = FORMAT_VERSION + 1
        # Re-encode, padding to the original length so offsets stay valid.
        encoded = json.dumps(header, sort_keys=True).encode("utf-8")
        encoded += b" " * (header_length - len(encoded))
        artifact_path.write_bytes(
            raw[: len(MAGIC) + 8] + encoded + raw[len(MAGIC) + 8 + header_length :]
        )
        with pytest.raises(ArtifactVersionError, match="format version"):
            ArtifactFile(artifact_path)

    def test_flipped_payload_byte_fails_verify(self, artifact_path):
        data = bytearray(artifact_path.read_bytes())
        data[-1] ^= 0xFF
        artifact_path.write_bytes(bytes(data))
        artifact = ArtifactFile(artifact_path)  # lazy load still succeeds
        with pytest.raises(ArtifactChecksumError, match="checksum"):
            artifact.verify()

    def test_unknown_buffer_name(self, artifact_path):
        artifact = ArtifactFile(artifact_path)
        with pytest.raises(ArtifactFormatError, match="no buffer"):
            artifact.buffer("nonexistent")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(ArtifactFormatError):
            ArtifactFile(path)
