"""Wire-protocol conformance and fuzz suite.

Table-driven checks over the frame grammar in
:mod:`repro.store.wire` — the closed error-code catalogue, the
deadline and correlation-id header fields, oversized / zero-length /
truncated frames — plus seeded byte-level fuzz loops asserting the
decoders *always* finish promptly with either a decoded frame or a
typed :class:`WireError`: never a hang, never an unbounded buffer,
never a raw ``struct``/``json``/``Unicode`` error escaping the module.

The sync (:func:`recv_frame_ex`) and asyncio
(:func:`read_frame_async`) decoders are held to byte-identical
behaviour over the same inputs, since keep-alive multiplexing relies
on both ends agreeing on every framing corner case.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import random
import socket

import pytest

from repro.store.wire import (
    CORRELATION_FLAG,
    DEADLINE_FLAG,
    ERROR_CODES,
    MAX_CORRELATION_ID,
    MAX_DEADLINE_MS,
    MAX_FRAME_BYTES,
    MAX_SPAN_ID,
    PROTOCOL_VERSION,
    RETRYABLE_CODES,
    TRACE_FLAG,
    TRACE_ID_BYTES,
    ConnectionClosed,
    Frame,
    FrameTooLargeError,
    WireError,
    encode_frame,
    error_response,
    ok_response,
    read_frame_async,
    recv_frame,
    recv_frame_ex,
    recv_message,
    send_message,
)

#: Every decode in this suite must finish well inside this bound; a
#: decoder that blocks on absent bytes would hang the whole suite.
DECODE_TIMEOUT = 10.0


def decode_bytes(payload: bytes) -> Frame:
    """Run the blocking decoder over ``payload`` followed by EOF."""
    a, b = socket.socketpair()
    with a, b:
        a.sendall(payload)
        a.close()
        b.settimeout(DECODE_TIMEOUT)
        return recv_frame_ex(b)


def decode_bytes_async(payload: bytes) -> Frame:
    """Run the asyncio decoder over ``payload`` followed by EOF."""

    async def run() -> Frame:
        reader = asyncio.StreamReader()
        reader.feed_data(payload)
        reader.feed_eof()
        return await asyncio.wait_for(
            read_frame_async(reader), DECODE_TIMEOUT
        )

    return asyncio.run(run())


def frame_bytes(message: dict, deadline_ms=None, correlation_id=None,
                length=None, trace_id=None, span_id=0) -> bytes:
    """Hand-rolled frame encoding, independent of :func:`encode_frame`,
    so encoder and decoder are checked against the spec rather than
    against each other.  ``length`` overrides the announced length."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    word = len(body) if length is None else length
    tail = b""
    if deadline_ms is not None:
        word |= DEADLINE_FLAG
        tail += deadline_ms.to_bytes(8, "big")
    if correlation_id is not None:
        word |= CORRELATION_FLAG
        tail += correlation_id.to_bytes(4, "big")
    if trace_id is not None:
        word |= TRACE_FLAG
        tail += bytes.fromhex(trace_id) + span_id.to_bytes(4, "big")
    return word.to_bytes(4, "big") + tail + body


# -- the frame grammar -------------------------------------------------------------


class TestFrameGrammar:
    def test_flagless_frame_is_byte_identical_to_legacy(self):
        """No deadline, no correlation id → the original protocol's
        exact bytes (which is why neither field bumps the version)."""
        message = {"v": 1, "op": "ping"}
        body = json.dumps(message, separators=(",", ":")).encode()
        assert encode_frame(message) == len(body).to_bytes(4, "big") + body

    def test_roundtrip_plain(self):
        frame = decode_bytes(encode_frame({"op": "ping", "v": 1}))
        assert frame == Frame({"op": "ping", "v": 1}, None, None)

    def test_roundtrip_deadline(self):
        frame = decode_bytes(encode_frame({"op": "x"}, deadline_ms=1500))
        assert frame.deadline_ms == 1500
        assert frame.correlation_id is None

    def test_roundtrip_correlation_id(self):
        frame = decode_bytes(encode_frame({"op": "x"}, correlation_id=7))
        assert frame.correlation_id == 7
        assert frame.deadline_ms is None

    def test_roundtrip_both_fields(self):
        frame = decode_bytes(
            encode_frame({"op": "x"}, deadline_ms=250, correlation_id=41)
        )
        assert (frame.deadline_ms, frame.correlation_id) == (250, 41)

    def test_header_field_order_deadline_then_cid(self):
        """The deadline field precedes the correlation id; a
        spec-encoded frame decodes to the right fields (not swapped)."""
        raw = frame_bytes({"op": "x"}, deadline_ms=9, correlation_id=5)
        word = int.from_bytes(raw[:4], "big")
        assert word & DEADLINE_FLAG and word & CORRELATION_FLAG
        assert raw[4:12] == (9).to_bytes(8, "big")
        assert raw[12:16] == (5).to_bytes(4, "big")
        assert decode_bytes(raw) == Frame({"op": "x"}, 9, 5)

    def test_encoder_matches_hand_rolled_spec_encoding(self):
        for deadline_ms, correlation_id in (
            (None, None), (1000, None), (None, 3), (77, 12),
        ):
            assert encode_frame(
                {"op": "y"}, deadline_ms, correlation_id
            ) == frame_bytes({"op": "y"}, deadline_ms, correlation_id)

    def test_negative_deadline_clamps_to_zero(self):
        frame = decode_bytes(encode_frame({"op": "x"}, deadline_ms=-5))
        assert frame.deadline_ms == 0

    def test_huge_deadline_clamps_to_max(self):
        frame = decode_bytes(
            encode_frame({"op": "x"}, deadline_ms=MAX_DEADLINE_MS * 10)
        )
        assert frame.deadline_ms == MAX_DEADLINE_MS

    @pytest.mark.parametrize("cid", [0, 1, MAX_CORRELATION_ID])
    def test_correlation_id_boundaries_roundtrip(self, cid):
        assert decode_bytes(
            encode_frame({"op": "x"}, correlation_id=cid)
        ).correlation_id == cid

    @pytest.mark.parametrize("cid", [-1, MAX_CORRELATION_ID + 1])
    def test_correlation_id_out_of_range_refused_at_encode(self, cid):
        with pytest.raises(WireError, match="uint32"):
            encode_frame({"op": "x"}, correlation_id=cid)

    def test_recv_frame_keeps_the_historical_two_field_shape(self):
        a, b = socket.socketpair()
        with a, b:
            send_message(a, {"op": "x"}, deadline_ms=40, correlation_id=2)
            b.settimeout(DECODE_TIMEOUT)
            assert recv_frame(b) == ({"op": "x"}, 40)

    def test_recv_message_discards_header_fields(self):
        a, b = socket.socketpair()
        with a, b:
            send_message(a, {"ok": True}, deadline_ms=5, correlation_id=1)
            b.settimeout(DECODE_TIMEOUT)
            assert recv_message(b) == {"ok": True}

    def test_frame_is_immutable(self):
        frame = Frame({"op": "x"}, 1, 2)
        with pytest.raises(dataclasses.FrozenInstanceError):
            frame.deadline_ms = 9

    def test_unicode_body_roundtrips(self):
        message = {"op": "classify", "urls": ["http://bücher.de/€"]}
        assert decode_bytes(encode_frame(message)).message == message

    def test_pipelined_frames_decode_in_order_with_their_ids(self):
        """Several frames back to back on one stream — the keep-alive
        case — decode strictly in order, each with its own id."""
        a, b = socket.socketpair()
        with a, b:
            for cid in (3, 1, 2):
                send_message(a, {"op": "ping", "cid": cid},
                             correlation_id=cid)
            b.settimeout(DECODE_TIMEOUT)
            for expected in (3, 1, 2):
                frame = recv_frame_ex(b)
                assert frame.correlation_id == expected
                assert frame.message["cid"] == expected

    def test_flag_bits_do_not_shrink_the_length_budget(self):
        """MAX_FRAME_BYTES must leave every flag bit clear."""
        for flag in (DEADLINE_FLAG, CORRELATION_FLAG, TRACE_FLAG):
            assert MAX_FRAME_BYTES & flag == 0
        assert MAX_FRAME_BYTES < min(
            DEADLINE_FLAG, CORRELATION_FLAG, TRACE_FLAG
        )

    def test_flag_bits_are_distinct(self):
        assert len({DEADLINE_FLAG, CORRELATION_FLAG, TRACE_FLAG}) == 3
        assert DEADLINE_FLAG | CORRELATION_FLAG | TRACE_FLAG == 0xE000_0000


TRACE_ID = "00112233445566778899aabbccddeeff"


class TestTraceField:
    def test_traceless_frames_stay_byte_identical(self):
        """A client that never traces emits exactly the old bytes —
        the no-version-bump compatibility contract."""
        for deadline_ms, correlation_id in (
            (None, None), (1000, None), (None, 3), (77, 12),
        ):
            assert encode_frame(
                {"op": "y"}, deadline_ms, correlation_id
            ) == frame_bytes({"op": "y"}, deadline_ms, correlation_id)

    def test_trace_roundtrip(self):
        frame = decode_bytes(
            encode_frame({"op": "x"}, trace_id=TRACE_ID, span_id=42)
        )
        assert frame.trace_id == TRACE_ID
        assert frame.span_id == 42
        assert frame.deadline_ms is None and frame.correlation_id is None

    def test_trace_roundtrip_async(self):
        frame = decode_bytes_async(
            encode_frame({"op": "x"}, trace_id=TRACE_ID, span_id=7)
        )
        assert (frame.trace_id, frame.span_id) == (TRACE_ID, 7)

    def test_encoder_matches_hand_rolled_trace_encoding(self):
        assert encode_frame(
            {"op": "y"}, 50, 9, trace_id=TRACE_ID, span_id=3
        ) == frame_bytes({"op": "y"}, 50, 9, trace_id=TRACE_ID, span_id=3)

    def test_header_field_order_deadline_cid_trace(self):
        raw = frame_bytes({"op": "x"}, deadline_ms=9, correlation_id=5,
                          trace_id=TRACE_ID, span_id=6)
        word = int.from_bytes(raw[:4], "big")
        assert word & DEADLINE_FLAG and word & CORRELATION_FLAG
        assert word & TRACE_FLAG
        assert raw[4:12] == (9).to_bytes(8, "big")
        assert raw[12:16] == (5).to_bytes(4, "big")
        assert raw[16:32] == bytes.fromhex(TRACE_ID)
        assert raw[32:36] == (6).to_bytes(4, "big")
        frame = decode_bytes(raw)
        assert frame == Frame({"op": "x"}, 9, 5, TRACE_ID, 6)

    def test_span_defaults_to_zero_when_omitted(self):
        frame = decode_bytes(encode_frame({"op": "x"}, trace_id=TRACE_ID))
        assert frame.span_id == 0

    def test_uppercase_trace_id_normalises_to_lowercase(self):
        frame = decode_bytes(
            encode_frame({"op": "x"}, trace_id=TRACE_ID.upper())
        )
        assert frame.trace_id == TRACE_ID

    @pytest.mark.parametrize("span", [0, 1, MAX_SPAN_ID])
    def test_span_id_boundaries_roundtrip(self, span):
        assert decode_bytes(
            encode_frame({"op": "x"}, trace_id=TRACE_ID, span_id=span)
        ).span_id == span

    @pytest.mark.parametrize("bad", [
        "short", "zz" * 16, TRACE_ID + "00", "", "g" * 32,
    ])
    def test_malformed_trace_id_refused_at_encode(self, bad):
        with pytest.raises(WireError, match="trace id"):
            encode_frame({"op": "x"}, trace_id=bad)

    @pytest.mark.parametrize("span", [-1, MAX_SPAN_ID + 1])
    def test_span_id_out_of_range_refused_at_encode(self, span):
        with pytest.raises(WireError, match="span id"):
            encode_frame({"op": "x"}, trace_id=TRACE_ID, span_id=span)

    def test_truncated_trace_field_is_dirty(self):
        full = encode_frame({"op": "x"}, trace_id=TRACE_ID, span_id=1)
        for cut in range(5, 4 + TRACE_ID_BYTES + 4):  # inside the field
            with pytest.raises(ConnectionClosed) as caught:
                decode_bytes(full[:cut])
            assert caught.value.clean is False

    def test_trace_rides_with_send_message(self):
        a, b = socket.socketpair()
        with a, b:
            send_message(a, {"op": "x"}, trace_id=TRACE_ID, span_id=11)
            b.settimeout(DECODE_TIMEOUT)
            frame = recv_frame_ex(b)
            assert (frame.trace_id, frame.span_id) == (TRACE_ID, 11)


# -- the error-code catalogue ------------------------------------------------------


class TestErrorCatalogue:
    @pytest.mark.parametrize("code", ERROR_CODES)
    def test_every_code_roundtrips_in_a_wire_frame(self, code):
        response = error_response(code, f"scripted {code}")
        decoded = decode_bytes(encode_frame(response)).message
        assert decoded["v"] == PROTOCOL_VERSION
        assert decoded["ok"] is False
        assert decoded["error"]["code"] == code
        assert decoded["error"]["message"] == f"scripted {code}"

    def test_catalogue_is_closed_and_stable(self):
        """The closed set operators alert on; growing it is fine,
        renaming or dropping a code is a compatibility break."""
        assert set(ERROR_CODES) == {
            "bad-request", "frame-too-large", "protocol-version",
            "unknown-op", "overloaded", "deadline-exceeded",
            "shutting-down", "internal",
        }
        assert len(set(ERROR_CODES)) == len(ERROR_CODES)

    def test_retryable_codes_are_a_strict_subset(self):
        assert RETRYABLE_CODES < set(ERROR_CODES)
        assert RETRYABLE_CODES == {"overloaded", "shutting-down"}
        # Terminal by design: spent budgets and malformed requests.
        assert "deadline-exceeded" not in RETRYABLE_CODES
        assert "bad-request" not in RETRYABLE_CODES

    def test_unregistered_code_is_refused(self):
        with pytest.raises(AssertionError):
            error_response("no-such-code", "nope")

    def test_ok_response_shape(self):
        assert ok_response(pong=True) == {
            "v": PROTOCOL_VERSION, "ok": True, "pong": True,
        }


# -- decoder rejection paths -------------------------------------------------------


class TestDecoderRejections:
    def test_oversized_announcement_rejected_before_reading(self):
        """The decoder must refuse from the 4-byte word alone — no body
        bytes follow, yet it must not wait for them."""
        with pytest.raises(FrameTooLargeError):
            decode_bytes((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))

    @pytest.mark.parametrize(
        "flags", [DEADLINE_FLAG, CORRELATION_FLAG,
                  DEADLINE_FLAG | CORRELATION_FLAG],
    )
    def test_oversized_announcement_with_flags_rejected(self, flags):
        word = (MAX_FRAME_BYTES + 1) | flags
        with pytest.raises(FrameTooLargeError):
            decode_bytes(word.to_bytes(4, "big"))

    def test_zero_length_frame_is_typed_not_a_crash(self):
        with pytest.raises(WireError, match="not valid JSON"):
            decode_bytes((0).to_bytes(4, "big"))

    def test_clean_close_before_any_frame(self):
        with pytest.raises(ConnectionClosed) as caught:
            decode_bytes(b"")
        assert caught.value.clean is True

    def test_truncated_length_word_is_dirty(self):
        with pytest.raises(ConnectionClosed) as caught:
            decode_bytes(b"\x00\x00")
        assert caught.value.clean is False

    def test_truncated_body_is_dirty(self):
        payload = encode_frame({"op": "ping", "v": 1})
        with pytest.raises(ConnectionClosed) as caught:
            decode_bytes(payload[: len(payload) - 3])
        assert caught.value.clean is False

    def test_truncated_deadline_field_is_dirty(self):
        word = DEADLINE_FLAG | 2
        with pytest.raises(ConnectionClosed) as caught:
            decode_bytes(word.to_bytes(4, "big") + b"\x00\x00\x00")
        assert caught.value.clean is False

    def test_truncated_correlation_field_is_dirty(self):
        word = CORRELATION_FLAG | 2
        with pytest.raises(ConnectionClosed) as caught:
            decode_bytes(word.to_bytes(4, "big") + b"\x00")
        assert caught.value.clean is False

    def test_non_object_json_body_rejected(self):
        with pytest.raises(WireError, match="JSON object"):
            decode_bytes(frame_bytes([1, 2, 3]))

    def test_non_utf8_body_rejected(self):
        body = b"\xff\xfe\x00\x01"
        with pytest.raises(WireError, match="not valid JSON"):
            decode_bytes(len(body).to_bytes(4, "big") + body)

    def test_non_json_body_rejected(self):
        body = b"not json at all"
        with pytest.raises(WireError, match="not valid JSON"):
            decode_bytes(len(body).to_bytes(4, "big") + body)

    def test_oversized_outgoing_body_refused_at_encode(self):
        message = {"blob": "x" * (MAX_FRAME_BYTES + 16)}
        with pytest.raises(FrameTooLargeError, match="outgoing"):
            encode_frame(message)

    def test_every_rejection_is_a_wire_error(self):
        """The exception taxonomy callers rely on for retry decisions."""
        assert issubclass(FrameTooLargeError, WireError)
        assert issubclass(ConnectionClosed, WireError)


# -- sync/async decoder parity -----------------------------------------------------


#: Inputs every decoder must treat identically: (payload, expectation).
#: ``expectation`` is a Frame for valid inputs or the required
#: exception type for invalid ones.
PARITY_TABLE = [
    ("plain", encode_frame({"op": "ping", "v": 1}),
     Frame({"op": "ping", "v": 1})),
    ("deadline", encode_frame({"op": "x"}, deadline_ms=123),
     Frame({"op": "x"}, 123)),
    ("cid", encode_frame({"op": "x"}, correlation_id=9),
     Frame({"op": "x"}, None, 9)),
    ("both", encode_frame({"op": "x"}, deadline_ms=1, correlation_id=2),
     Frame({"op": "x"}, 1, 2)),
    ("trace", encode_frame({"op": "x"}, trace_id="ab" * 16, span_id=4),
     Frame({"op": "x"}, None, None, "ab" * 16, 4)),
    ("all-fields", encode_frame({"op": "x"}, deadline_ms=1,
                                correlation_id=2, trace_id="cd" * 16,
                                span_id=8),
     Frame({"op": "x"}, 1, 2, "cd" * 16, 8)),
    ("torn-trace",
     encode_frame({"op": "x"}, trace_id="ab" * 16)[:10],
     ConnectionClosed),
    ("eof", b"", ConnectionClosed),
    ("torn-header", b"\x00\x00\x01", ConnectionClosed),
    ("torn-body", encode_frame({"op": "ping"})[:-2], ConnectionClosed),
    ("oversized", (MAX_FRAME_BYTES + 1).to_bytes(4, "big"),
     FrameTooLargeError),
    ("zero-length", (0).to_bytes(4, "big"), WireError),
    ("non-object", frame_bytes("just a string"), WireError),
]


class TestSyncAsyncParity:
    @pytest.mark.parametrize(
        "payload,expectation",
        [case[1:] for case in PARITY_TABLE],
        ids=[case[0] for case in PARITY_TABLE],
    )
    def test_decoders_agree(self, payload, expectation):
        for decode in (decode_bytes, decode_bytes_async):
            if isinstance(expectation, Frame):
                assert decode(payload) == expectation
            else:
                with pytest.raises(expectation):
                    decode(payload)

    def test_async_clean_flag_matches_sync(self):
        for payload, clean in ((b"", True), (b"\x01", False),
                               (encode_frame({"a": 1})[:-1], False)):
            for decode in (decode_bytes, decode_bytes_async):
                with pytest.raises(ConnectionClosed) as caught:
                    decode(payload)
                assert caught.value.clean is clean, (payload, decode)


# -- seeded byte-level fuzz --------------------------------------------------------


def assert_decodes_or_raises_typed(payload: bytes) -> None:
    """The fuzz invariant: both decoders finish promptly and anything
    they raise is a typed :class:`WireError` — no hangs (the
    ``DECODE_TIMEOUT`` guards in the helpers), no unbounded reads (the
    payload is all they ever get), no foreign exception types."""
    for decode in (decode_bytes, decode_bytes_async):
        try:
            frame = decode(payload)
        except WireError:
            continue
        assert isinstance(frame, Frame)


class TestFuzz:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_bytes_never_escape_the_taxonomy(self, seed):
        rng = random.Random(1000 + seed)
        for _ in range(200):
            payload = rng.randbytes(rng.randrange(0, 64))
            assert_decodes_or_raises_typed(payload)

    @pytest.mark.parametrize("seed", range(8))
    def test_mutated_valid_frames_never_escape(self, seed):
        """Bit-flip and splice corruptions of real frames — the
        likeliest on-the-wire damage shapes."""
        rng = random.Random(2000 + seed)
        base = encode_frame(
            {"op": "classify", "urls": ["http://example.de/seite"] * 3,
             "v": 1},
            deadline_ms=1500, correlation_id=77,
        )
        for _ in range(200):
            corrupted = bytearray(base)
            for _ in range(rng.randrange(1, 5)):
                corrupted[rng.randrange(len(corrupted))] ^= (
                    1 << rng.randrange(8)
                )
            if rng.random() < 0.5:
                corrupted = corrupted[: rng.randrange(len(corrupted) + 1)]
            assert_decodes_or_raises_typed(bytes(corrupted))

    @pytest.mark.parametrize("seed", range(4))
    def test_random_header_words_never_escape(self, seed):
        """All 32 header-word bit patterns' neighbourhoods: random
        words (flags included) over a short random tail."""
        rng = random.Random(3000 + seed)
        for _ in range(200):
            word = rng.getrandbits(32)
            tail = rng.randbytes(rng.randrange(0, 32))
            assert_decodes_or_raises_typed(word.to_bytes(4, "big") + tail)

    def test_every_truncation_point_of_a_full_frame(self):
        """Deterministic sweep: a frame with every header field cut at
        *each* byte offset must raise ``ConnectionClosed`` — clean only
        at offset zero — and never anything untyped."""
        payload = encode_frame(
            {"op": "decisions", "urls": ["http://a.fr/page"]},
            deadline_ms=2000, correlation_id=5,
        )
        for cut in range(len(payload)):
            with pytest.raises(ConnectionClosed) as caught:
                decode_bytes(payload[:cut])
            assert caught.value.clean is (cut == 0), cut
        assert decode_bytes(payload).correlation_id == 5

    def test_fuzz_decode_is_bounded_memory(self):
        """A frame announcing the full 32 MiB with no body must fail on
        EOF without ever allocating the announced size (the decoder
        reads at most what arrives; this returns promptly)."""
        with pytest.raises(ConnectionClosed):
            decode_bytes(MAX_FRAME_BYTES.to_bytes(4, "big") + b"x" * 100)
