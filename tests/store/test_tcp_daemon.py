"""The TCP front door, held to the Unix-socket daemon's contract.

One parametrized ``transport`` fixture runs the existing lifecycle and
robustness scenarios — oracle byte-parity, SIGHUP reload, saturation
shedding, SIGTERM drain, worker-kill chaos — unmodified against both
front doors of the *same* daemon (every daemon here listens on its
Unix socket and on TCP at once, which is exactly the deployment shape
``serve start --tcp`` produces).  On top of the shared matrix:
keep-alive pipelining with correlation-id echo over raw sockets, the
``repro+tcp://`` resolver route, ``parse_tcp_spec`` grammar, and the
HTTP front-end's keyset pagination.
"""

from __future__ import annotations

import json
import signal
import socket
import threading
import time
import urllib.error
import urllib.request
from types import SimpleNamespace

import pytest

from repro.core.pipeline import LanguageIdentifier
from repro.store import save_identifier
from repro.store.client import (
    DaemonClient,
    DaemonRequestError,
    RemoteIdentifier,
    RetryPolicy,
)
from repro.store.daemon import (
    decode_page_cursor,
    encode_page_cursor,
    parse_tcp_spec,
    signal_daemon,
    start_daemon,
    stop_daemon,
)
from repro.store.wire import recv_frame_ex, send_message
from repro.testing.faults import FAULTS_ENV, FAULTS_STATE_ENV

FAST = RetryPolicy(retries=4, backoff=0.01, backoff_max=0.02)


@pytest.fixture(scope="module")
def oracle_pair(small_train, tmp_path_factory):
    """Two fitted identifiers (distinct algorithms) and the saved
    artifact of the first — the before/after of a hot reload."""
    train = small_train.subsample(0.3, seed=7)
    first = LanguageIdentifier("words", "NB", seed=0).fit(train)
    second = LanguageIdentifier("words", "RE", seed=1).fit(train)
    path = tmp_path_factory.mktemp("tcp-model") / "nb.urlmodel"
    save_identifier(first, path)
    return path, first, second


@pytest.fixture(scope="module")
def test_urls(small_bundle):
    return small_bundle.odp_test.urls[:30]


def sparse_oracle(identifier, urls):
    return {
        language.value: values
        for language, values in identifier._sparse_decisions(urls).items()
    }


def arm_faults(monkeypatch, tmp_path, spec: str) -> None:
    monkeypatch.setenv(FAULTS_ENV, spec)
    monkeypatch.setenv(FAULTS_STATE_ENV, str(tmp_path / "fault-state"))


@pytest.fixture(params=["unix", "tcp"])
def transport(request):
    """Which front door of the dual-listener daemon a scenario dials."""
    return request.param


@pytest.fixture
def live_daemon(oracle_pair, sockpath, transport, tmp_path):
    """Factory for dual-listener daemons, yielding per-transport
    endpoints.

    Returned records carry ``endpoint`` (what :class:`DaemonClient`
    dials for the parametrized transport), ``socket_path`` (for
    signals/stop), and ``pid``.  Started *inside* the test so chaos
    scenarios can arm faults in the environment first.
    """
    model_path, first, _ = oracle_pair
    started = []

    def start(workers=2, model=None):
        socket_path = sockpath(f"d{len(started)}.sock")
        pid = start_daemon(
            model or model_path, socket_path, workers=workers,
            tcp="127.0.0.1:0",
        )
        with DaemonClient(socket_path) as client:
            tcp_block = client.status()["tcp"]
        assert tcp_block["host"] == "127.0.0.1" and tcp_block["port"] > 0
        endpoint = (
            socket_path if transport == "unix"
            else ("127.0.0.1", tcp_block["port"])
        )
        record = SimpleNamespace(
            pid=pid, socket_path=socket_path, endpoint=endpoint,
            tcp_port=tcp_block["port"],
        )
        started.append(record)
        return record

    yield start
    for record in started:
        try:
            stop_daemon(record.socket_path)
        except RuntimeError:
            pass  # the scenario already stopped (or drained) it


def raw_connect(record, transport):
    """A raw stream socket to the parametrized front door."""
    if transport == "unix":
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.connect(str(record.socket_path))
    else:
        raw = socket.create_connection(("127.0.0.1", record.tcp_port))
    raw.settimeout(30.0)
    return raw


class TestTransportMatrix:
    """The lifecycle and robustness scenarios, over both front doors."""

    def test_lifecycle_oracle_parity_and_accounting(
        self, live_daemon, oracle_pair, test_urls, transport
    ):
        _, first, _ = oracle_pair
        record = live_daemon()
        with DaemonClient(record.endpoint) as client:
            assert client.decisions(test_urls) == sparse_oracle(
                first, test_urls
            )
            reference = first.scores_many(test_urls)
            assert client.score(test_urls) == {
                language.value: values
                for language, values in reference.items()
            }
            rows = client.classify(test_urls[:10])
            best = first.classify_many(test_urls[:10])
            assert [row.best for row in rows] == [
                b.value if b else None for b in best
            ]
            # One persistent connection lands everything on one worker,
            # whose per-transport counters must name this front door
            # (the status answering now counts itself only on the next
            # snapshot, so: decisions + score + classify = 3).
            requests = client.status()["requests"]
            assert requests["by_transport"][transport] >= 3
            assert requests["errors"] == 0

    def test_sighup_reload_serves_the_new_oracle(
        self, live_daemon, oracle_pair, test_urls, tmp_path
    ):
        model_path, first, second = oracle_pair
        # A private artifact copy: the reload mutates it.
        private = tmp_path / "reload.urlmodel"
        private.write_bytes(model_path.read_bytes())
        record = live_daemon(model=private)
        with DaemonClient(record.endpoint) as client:
            first_checksum = client.status()["model"]["checksum"]
            assert client.decisions(test_urls) == sparse_oracle(
                first, test_urls
            )
            save_identifier(second, private)
            signal_daemon(record.socket_path, signal.SIGHUP)
            deadline = time.time() + 30
            while time.time() < deadline:
                status = client.status()
                if status["model"]["checksum"] != first_checksum:
                    break
                time.sleep(0.1)
            assert status["model"]["name"] == "RE/words"
            assert client.decisions(test_urls) == sparse_oracle(
                second, test_urls
            )

    def test_saturated_daemon_sheds_with_typed_overloaded(
        self, live_daemon, oracle_pair, test_urls, tmp_path, monkeypatch
    ):
        _, first, _ = oracle_pair
        arm_faults(
            monkeypatch, tmp_path,
            "slow-handler:op=decisions,seconds=2.5,times=1",
        )
        record = live_daemon(workers=1)
        slow_result = {}

        def slow_call():
            with DaemonClient(record.endpoint, retry=FAST) as client:
                slow_result["decisions"] = client.decisions(test_urls)

        pinned = threading.Thread(target=slow_call)
        pinned.start()
        time.sleep(0.6)
        no_retry = RetryPolicy(retries=0, backoff=0.01)
        with DaemonClient(record.endpoint, retry=no_retry) as client:
            with pytest.raises(DaemonRequestError) as caught:
                client.decisions(test_urls[:2])
        assert caught.value.code == "overloaded"
        # Health stays observable from the parent on this same door.
        with DaemonClient(record.endpoint, retry=FAST) as client:
            status = client.status()
        assert status["role"] == "parent"
        assert status["robustness"]["overload_rejections"] >= 1
        pinned.join(timeout=30)
        assert slow_result["decisions"] == sparse_oracle(first, test_urls)

    def test_sigterm_drains_in_flight_then_refuses_late_frames(
        self, live_daemon, oracle_pair, test_urls, tmp_path, monkeypatch
    ):
        _, first, _ = oracle_pair
        arm_faults(
            monkeypatch, tmp_path,
            "slow-handler:op=decisions,seconds=1.2,times=1",
        )
        record = live_daemon(workers=1)
        no_retry = RetryPolicy(retries=0, backoff=0.01)
        client = DaemonClient(record.endpoint, retry=no_retry)
        outcome = {}

        def in_flight():
            try:
                outcome["decisions"] = client.decisions(test_urls)
            except Exception as error:  # noqa: BLE001 - assert below
                outcome["error"] = error

        try:
            request = threading.Thread(target=in_flight)
            request.start()
            time.sleep(0.5)
            signal_daemon(record.socket_path, signal.SIGTERM)
            request.join(timeout=30)
            assert "error" not in outcome, outcome.get("error")
            assert outcome["decisions"] == sparse_oracle(first, test_urls)
            with pytest.raises(DaemonRequestError) as caught:
                client.ping()
            assert caught.value.code == "shutting-down"
        finally:
            client.close()
            from repro.store.daemon import pidfile_for

            deadline = time.time() + 30
            while time.time() < deadline and pidfile_for(
                record.socket_path
            ).exists():
                time.sleep(0.1)

    def test_worker_sigkill_mid_request_retry_completes(
        self, live_daemon, oracle_pair, test_urls, tmp_path, monkeypatch
    ):
        _, first, _ = oracle_pair
        arm_faults(
            monkeypatch, tmp_path, "worker-kill:op=decisions,times=1"
        )
        record = live_daemon(workers=2)
        with DaemonClient(record.endpoint, retry=FAST) as client:
            assert client.decisions(test_urls) == sparse_oracle(
                first, test_urls
            )
            status = client.status()
        assert status["robustness"]["retries_observed"] >= 1

    def test_keepalive_pipelining_echoes_correlation_ids_in_order(
        self, live_daemon, transport
    ):
        """Five frames written back-to-back before any read: the daemon
        answers strictly in request order, echoing each frame's
        correlation id — the contract the async client's multiplexing
        rests on."""
        record = live_daemon(workers=1)
        cids = [7, 3, 9, 1, 4]
        with raw_connect(record, transport) as raw:
            for cid in cids:
                send_message(raw, {"op": "ping", "v": 1},
                             correlation_id=cid)
            for expected in cids:
                frame = recv_frame_ex(raw)
                assert frame.message["ok"] is True
                assert frame.correlation_id == expected

    def test_idless_frames_get_idless_responses(
        self, live_daemon, transport
    ):
        """A legacy client that never sends correlation ids must get
        byte-compatible responses with no correlation field."""
        record = live_daemon(workers=1)
        with raw_connect(record, transport) as raw:
            send_message(raw, {"op": "ping", "v": 1})
            frame = recv_frame_ex(raw)
            assert frame.message["ok"] is True
            assert frame.correlation_id is None


class TestTcpSpecGrammar:
    def test_host_port_forms(self):
        assert parse_tcp_spec("127.0.0.1:7707") == ("127.0.0.1", 7707)
        assert parse_tcp_spec(":0") == ("127.0.0.1", 0)
        assert parse_tcp_spec("0.0.0.0:80") == ("0.0.0.0", 80)
        assert parse_tcp_spec(("example.org", 9000)) == ("example.org", 9000)

    @pytest.mark.parametrize("spec", ["7707", "host:", "host:http", ""])
    def test_malformed_specs_refused(self, spec):
        with pytest.raises(ValueError):
            parse_tcp_spec(spec)

    def test_bad_spec_fails_in_the_caller_not_the_child(
        self, oracle_pair, sockpath
    ):
        """`serve start --tcp nonsense` must raise in the starting
        process, not die invisibly in the detached daemon."""
        model_path, _, _ = oracle_pair
        with pytest.raises(ValueError, match="host:port"):
            start_daemon(
                model_path, sockpath("bad.sock"), workers=1, tcp="nonsense"
            )


class TestTcpResolver:
    def test_repro_tcp_handle_resolves_with_oracle_parity(
        self, live_daemon, oracle_pair, test_urls, transport
    ):
        from repro.api import open_model

        if transport == "unix":
            pytest.skip("resolver route is the TCP-specific half")
        _, first, _ = oracle_pair
        record = live_daemon()
        handle = f"repro+tcp://127.0.0.1:{record.tcp_port}"
        with open_model(handle) as model:
            assert isinstance(model, RemoteIdentifier)
            assert model.name == "NB/words"
            decisions = {
                language.value: values
                for language, values in model.decisions(test_urls).items()
            }
        assert decisions == sparse_oracle(first, test_urls)


class TestHttpPagination:
    @pytest.fixture()
    def http_daemon(self, oracle_pair, sockpath):
        model_path, first, _ = oracle_pair
        socket_path = sockpath("http.sock")
        start_daemon(model_path, socket_path, workers=1, http_port=0)
        with DaemonClient(socket_path) as client:
            port = client.status()["http_port"]
        yield f"http://127.0.0.1:{port}", first
        stop_daemon(socket_path)

    def post(self, base, path, body):
        request = urllib.request.Request(
            f"{base}{path}", data=json.dumps(body).encode(),
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with urllib.request.urlopen(request) as response:
            return json.loads(response.read())

    def test_keyset_pagination_walks_the_whole_batch(
        self, http_daemon, test_urls
    ):
        base, first = http_daemon
        urls = test_urls[:11]
        pages, cursor = [], None
        while True:
            body = {"urls": urls, "limit": 4}
            if cursor is not None:
                body["cursor"] = cursor
            page = self.post(base, "/v1/classify", body)
            assert page["ok"] and page["total"] == len(urls)
            pages.append(page)
            cursor = page["next_cursor"]
            if cursor is None:
                break
        assert [page["offset"] for page in pages] == [0, 4, 8]
        stitched = [row for page in pages for row in page["results"]]
        best = first.classify_many(urls)
        assert [row["best"] for row in stitched] == [
            b.value if b else None for b in best
        ]

    def test_cursor_from_a_different_batch_rejected(
        self, http_daemon, test_urls
    ):
        base, _ = http_daemon
        urls = test_urls[:8]
        foreign = encode_page_cursor(["http://other.example/x"], 1)
        with pytest.raises(urllib.error.HTTPError) as caught:
            self.post(base, "/v1/classify",
                      {"urls": urls, "limit": 2, "cursor": foreign})
        assert caught.value.code == 400

    @pytest.mark.parametrize("limit", [0, -3, "four"])
    def test_bad_limit_rejected(self, http_daemon, test_urls, limit):
        base, _ = http_daemon
        with pytest.raises(urllib.error.HTTPError) as caught:
            self.post(base, "/v1/classify",
                      {"urls": test_urls[:4], "limit": limit})
        assert caught.value.code == 400

    def test_unpaginated_requests_keep_the_exact_old_shape(
        self, http_daemon, test_urls
    ):
        """No limit/cursor in the body → no pagination keys in the
        response; pre-pagination consumers see unchanged payloads."""
        base, first = http_daemon
        page = self.post(base, "/v1/score", {"urls": test_urls[:3]})
        assert page["ok"]
        assert "next_cursor" not in page and "total" not in page
        reference = first.scores_many(test_urls[:3])
        assert page["scores"] == {
            language.value: values
            for language, values in reference.items()
        }

    def test_limit_covering_the_batch_ends_pagination_immediately(
        self, http_daemon, test_urls
    ):
        base, _ = http_daemon
        page = self.post(base, "/v1/decisions",
                         {"urls": test_urls[:3], "limit": 50})
        assert page["ok"] and page["next_cursor"] is None
        assert page["total"] == 3 and page["offset"] == 0

    def test_cursor_codec_roundtrip(self):
        urls = [f"http://example.fr/{i}" for i in range(10)]
        cursor = encode_page_cursor(urls, 3)
        assert decode_page_cursor(urls, cursor) == 4
        with pytest.raises(ValueError):
            decode_page_cursor(urls, "junk")
        with pytest.raises(ValueError):
            decode_page_cursor(urls, "2|000000000000")
        with pytest.raises(ValueError):
            decode_page_cursor(
                urls, encode_page_cursor(urls, 3).replace("3|", "99|")
            )
