"""Fault tolerance of the serving stack: deadlines, retries,
back-pressure, crash containment, and graceful drain.

Three layers of test, cheapest first:

* wire unit tests over socket pairs and fake sockets — the deadline
  header, torn-frame detection, EINTR recovery;
* client retry-policy tests against a *scripted* Unix-socket server —
  deterministic control over every response, no daemon processes;
* chaos integration tests against a real pre-forked daemon with faults
  armed through :mod:`repro.testing.faults` — worker SIGKILL mid-
  request, saturation, deadline expiry, crash loops, SIGTERM drain.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time

import pytest

from repro.core.pipeline import LanguageIdentifier
from repro.store import save_identifier
from repro.store.client import (
    IDEMPOTENT_OPS,
    DaemonClient,
    DaemonRequestError,
    DaemonUnavailableError,
    RetryPolicy,
)
from repro.store.daemon import (
    DaemonNotRunningError,
    DaemonStartupError,
    DaemonStopTimeout,
    signal_daemon,
    start_daemon,
    stop_daemon,
)
from repro.store.metrics import RobustnessCounters
from repro.store.wire import (
    DEADLINE_FLAG,
    ERROR_CODES,
    MAX_FRAME_BYTES,
    RETRYABLE_CODES,
    ConnectionClosed,
    error_response,
    ok_response,
    recv_frame,
    recv_message,
    send_message,
)
from repro.testing.faults import FAULTS_ENV, FAULTS_STATE_ENV


@pytest.fixture(scope="module")
def served_model(small_train, tmp_path_factory):
    """``(artifact_path, identifier)`` for the chaos daemons."""
    identifier = LanguageIdentifier("words", "NB", seed=0).fit(
        small_train.subsample(0.3, seed=7)
    )
    path = tmp_path_factory.mktemp("robust-model") / "nb.urlmodel"
    save_identifier(identifier, path)
    return path, identifier


@pytest.fixture(scope="module")
def test_urls(small_bundle):
    return small_bundle.odp_test.urls[:30]


def sparse_oracle(identifier, urls):
    return {
        language.value: values
        for language, values in identifier._sparse_decisions(urls).items()
    }


# -- wire: deadline header, torn frames, EINTR ------------------------------------


class TestDeadlineHeader:
    def test_roundtrip_with_budget(self):
        a, b = socket.socketpair()
        with a, b:
            send_message(a, {"op": "ping", "v": 1}, deadline_ms=1500)
            message, deadline_ms = recv_frame(b)
            assert message == {"op": "ping", "v": 1}
            assert deadline_ms == 1500

    def test_absent_budget_is_none_and_bytes_identical(self):
        """No deadline → the frame is byte-identical to the
        pre-deadline protocol (that is why this was not a version
        bump)."""
        a, b = socket.socketpair()
        with a, b:
            send_message(a, {"op": "ping"})
            frame = b.recv(1 << 16)
        body = frame[4:]
        word = int.from_bytes(frame[:4], "big")
        assert not word & DEADLINE_FLAG
        assert word == len(body)
        a, b = socket.socketpair()
        with a, b:
            a.sendall(frame)
            message, deadline_ms = recv_frame(b)
        assert message == {"op": "ping"}
        assert deadline_ms is None

    def test_negative_budget_clamps_to_zero(self):
        a, b = socket.socketpair()
        with a, b:
            send_message(a, {"op": "ping"}, deadline_ms=-50)
            _, deadline_ms = recv_frame(b)
            assert deadline_ms == 0

    def test_flagged_length_still_bounded(self):
        """The flag bit must not let an attacker smuggle an oversized
        length past the frame cap."""
        a, b = socket.socketpair()
        with a, b:
            word = DEADLINE_FLAG | (MAX_FRAME_BYTES + 1)
            a.sendall(word.to_bytes(4, "big"))
            from repro.store.wire import FrameTooLargeError

            with pytest.raises(FrameTooLargeError):
                recv_frame(b)


class TestTornFrames:
    def test_truncated_body_is_dirty_close(self):
        """Half a body then close → ConnectionClosed with clean=False
        (a truncation, never a parsed partial message)."""
        a, b = socket.socketpair()
        with b:
            with a:
                a.sendall((100).to_bytes(4, "big") + b'{"op":')
            with pytest.raises(ConnectionClosed) as caught:
                recv_message(b)
            assert caught.value.clean is False

    def test_truncated_deadline_field_is_dirty_close(self):
        a, b = socket.socketpair()
        with b:
            with a:
                word = DEADLINE_FLAG | 10
                a.sendall(word.to_bytes(4, "big") + b"\x00\x00\x00")
            with pytest.raises(ConnectionClosed) as caught:
                recv_frame(b)
            assert caught.value.clean is False

    def test_close_on_boundary_is_clean(self):
        a, b = socket.socketpair()
        with b:
            a.close()
            with pytest.raises(ConnectionClosed) as caught:
                recv_message(b)
            assert caught.value.clean is True

    def test_truncated_length_prefix_is_dirty(self):
        a, b = socket.socketpair()
        with b:
            with a:
                a.sendall(b"\x00\x00")
            with pytest.raises(ConnectionClosed) as caught:
                recv_message(b)
            assert caught.value.clean is False


class _InterruptedSocket:
    """A socket stand-in whose recv/send raise InterruptedError on a
    schedule — the raising-signal-handler case PEP 475 leaves open."""

    def __init__(self, payload: bytes = b"", interrupts: int = 2,
                 send_chunk: int = 3) -> None:
        self.payload = payload
        self.offset = 0
        self.interrupts = interrupts
        self.send_chunk = send_chunk
        self.sent = bytearray()

    def recv(self, n: int) -> bytes:
        if self.interrupts > 0:
            self.interrupts -= 1
            raise InterruptedError
        chunk = self.payload[self.offset:self.offset + min(n, 5)]
        self.offset += len(chunk)
        return chunk

    def send(self, view) -> int:
        if self.interrupts > 0:
            self.interrupts -= 1
            raise InterruptedError
        taken = bytes(view[: self.send_chunk])
        self.sent.extend(taken)
        return len(taken)


class TestEintrRecovery:
    def test_recv_resumes_after_interrupt(self):
        body = b'{"op":"ping"}'
        frame = len(body).to_bytes(4, "big") + body
        sock = _InterruptedSocket(payload=frame, interrupts=3)
        assert recv_message(sock) == {"op": "ping"}

    def test_send_resumes_at_exact_offset(self):
        """Interrupts and short sends must never duplicate or drop
        bytes — the peer decodes one intact frame."""
        sock = _InterruptedSocket(interrupts=4, send_chunk=3)
        send_message(sock, {"op": "status", "v": 1}, deadline_ms=250)
        a, b = socket.socketpair()
        with a, b:
            a.sendall(bytes(sock.sent))
            message, deadline_ms = recv_frame(b)
        assert message == {"op": "status", "v": 1}
        assert deadline_ms == 250


class TestErrorTaxonomy:
    def test_retryable_codes_are_registered(self):
        assert RETRYABLE_CODES <= set(ERROR_CODES)

    def test_terminal_codes_stay_terminal(self):
        for code in ("bad-request", "deadline-exceeded", "internal"):
            assert code in ERROR_CODES
            assert code not in RETRYABLE_CODES

    def test_mutating_ops_are_not_idempotent(self):
        assert "reload" not in IDEMPOTENT_OPS
        assert "stop" not in IDEMPOTENT_OPS


# -- RetryPolicy ------------------------------------------------------------------


class TestRetryPolicy:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.retries >= 1
        assert 0 < policy.backoff <= policy.backoff_max

    @pytest.mark.parametrize("kwargs", [
        {"retries": -1},
        {"backoff": 0.0},
        {"backoff": 0.5, "backoff_max": 0.1},
        {"deadline": 0.0},
        {"deadline": -3.0},
    ])
    def test_invalid_configs_refused(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_delay_grows_exponentially_with_jitter(self):
        policy = RetryPolicy(backoff=0.1, backoff_max=1.0)
        for attempt, ceiling in ((1, 0.1), (2, 0.2), (3, 0.4), (6, 1.0)):
            for _ in range(20):
                delay = policy.delay(attempt)
                assert ceiling * 0.5 <= delay <= ceiling


# -- client retry behaviour against a scripted server -----------------------------


class ScriptedServer:
    """A Unix-socket server that answers from a fixed script.

    Each script entry handles one *connection*: ``"ok"`` answers every
    frame successfully, an error code string answers one frame with
    that typed refusal then closes, ``"torn"`` sends half a response
    frame then hard-closes, ``"reset"`` closes without answering.
    Records every received request for assertions.
    """

    def __init__(self, path, script):
        self.path = str(path)
        self.script = list(script)
        self.requests: list[tuple[dict, int | None]] = []
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(self.path)
        self._listener.listen(8)
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        for action in self.script:
            try:
                connection, _ = self._listener.accept()
            except OSError:
                return
            with connection:
                try:
                    self._handle(connection, action)
                except (ConnectionClosed, OSError):
                    pass
        self._listener.close()

    def _handle(self, connection, action) -> None:
        message, deadline_ms = recv_frame(connection)
        self.requests.append((message, deadline_ms))
        if action == "reset":
            return
        if action == "torn":
            import json

            body = json.dumps(ok_response(pong=True)).encode()
            frame = len(body).to_bytes(4, "big") + body
            connection.sendall(frame[: len(frame) // 2])
            return
        if action == "ok":
            send_message(connection, ok_response(pid=os.getpid()))
            while True:  # keep answering on the persistent connection
                message, deadline_ms = recv_frame(connection)
                self.requests.append((message, deadline_ms))
                send_message(connection, ok_response(pid=os.getpid()))
        send_message(
            connection, error_response(action, f"scripted {action}")
        )

    def close(self) -> None:
        try:
            self._listener.close()
        except OSError:
            pass
        self._thread.join(timeout=5)


@pytest.fixture()
def scripted(sockpath):
    servers = []

    def factory(script):
        server = ScriptedServer(sockpath(f"s{len(servers)}.sock"), script)
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.close()


FAST = RetryPolicy(retries=4, backoff=0.01, backoff_max=0.02)


class TestClientRetries:
    def test_retryable_refusals_are_retried_to_success(self, scripted):
        server = scripted(["overloaded", "shutting-down", "ok"])
        with DaemonClient(server.path, retry=FAST) as client:
            assert client.ping() is True
        ops = [message["op"] for message, _ in server.requests]
        assert ops == ["ping", "ping", "ping"]
        # Replayed attempts are stamped so the daemon can count them.
        assert server.requests[1][0]["attempt"] == 2
        assert server.requests[2][0]["attempt"] == 3

    def test_terminal_refusal_not_retried(self, scripted):
        server = scripted(["bad-request", "ok"])
        with DaemonClient(server.path, retry=FAST) as client:
            with pytest.raises(DaemonRequestError) as caught:
                client.status()
        assert caught.value.code == "bad-request"
        assert len(server.requests) == 1

    def test_deadline_exceeded_not_retried(self, scripted):
        server = scripted(["deadline-exceeded", "ok"])
        with DaemonClient(server.path, retry=FAST) as client:
            with pytest.raises(DaemonRequestError) as caught:
                client.decisions(["http://a.de/x"])
        assert caught.value.code == "deadline-exceeded"
        assert len(server.requests) == 1

    def test_torn_frame_retried_on_fresh_connection(self, scripted):
        server = scripted(["torn", "ok"])
        with DaemonClient(server.path, retry=FAST) as client:
            assert client.ping() is True
        assert len(server.requests) == 2

    def test_connection_reset_retried(self, scripted):
        server = scripted(["reset", "ok"])
        with DaemonClient(server.path, retry=FAST) as client:
            assert client.ping() is True
        assert len(server.requests) == 2

    def test_budget_exhaustion_surfaces_typed_error(self, scripted):
        server = scripted(["overloaded"] * 3)
        policy = RetryPolicy(retries=2, backoff=0.01, backoff_max=0.02)
        with DaemonClient(server.path, retry=policy) as client:
            with pytest.raises(DaemonRequestError) as caught:
                client.ping()
        assert caught.value.code == "overloaded"
        assert len(server.requests) == 3  # 1 try + 2 retries, no more

    def test_non_idempotent_op_never_retried(self, scripted):
        server = scripted(["overloaded", "ok"])
        with DaemonClient(server.path, retry=FAST) as client:
            with pytest.raises(DaemonRequestError) as caught:
                client.stop()
        assert caught.value.code == "overloaded"
        assert len(server.requests) == 1

    def test_zero_retries_disables_retrying(self, scripted):
        server = scripted(["overloaded", "ok"])
        policy = RetryPolicy(retries=0, backoff=0.01)
        with DaemonClient(server.path, retry=policy) as client:
            with pytest.raises(DaemonRequestError):
                client.ping()
        assert len(server.requests) == 1

    def test_deadline_propagates_in_frame_header(self, scripted):
        server = scripted(["ok"])
        policy = RetryPolicy(retries=0, backoff=0.01, deadline=5.0)
        with DaemonClient(server.path, retry=policy) as client:
            client.ping()
        (_, deadline_ms), = server.requests
        assert deadline_ms is not None
        assert 0 < deadline_ms <= 5000

    def test_no_deadline_means_no_header_budget(self, scripted):
        server = scripted(["ok"])
        with DaemonClient(server.path, retry=FAST) as client:
            client.ping()
        (_, deadline_ms), = server.requests
        assert deadline_ms is None

    def test_deadline_bounds_total_retry_time(self, scripted):
        """Retries stop when the end-to-end deadline expires even with
        retry budget left."""
        server = scripted(["overloaded"] * 50)
        policy = RetryPolicy(
            retries=50, backoff=0.05, backoff_max=0.05, deadline=0.3
        )
        started = time.monotonic()
        with DaemonClient(server.path, retry=policy) as client:
            with pytest.raises(DaemonRequestError):
                client.ping()
        assert time.monotonic() - started < 2.0
        assert len(server.requests) < 20

    def test_connection_refusal_fails_fast(self, sockpath):
        """A daemon that was never there is not retried — fail fast so
        misconfiguration is loud."""
        started = time.monotonic()
        with DaemonClient(
            sockpath("never.sock"), timeout=2.0, retry=FAST
        ) as client:
            with pytest.raises(DaemonUnavailableError):
                client.ping()
        assert time.monotonic() - started < 1.0


# -- robustness counters ----------------------------------------------------------


class TestRobustnessCounters:
    def test_bump_and_snapshot(self):
        counters = RobustnessCounters()
        snapshot = counters.snapshot()
        assert snapshot["overload_rejections"] == 0
        assert snapshot["last_crash_at"] is None
        counters.bump("overload_rejections")
        counters.bump("retries_observed", by=3)
        counters.mark_crash(when=123.5)
        snapshot = counters.snapshot()
        assert snapshot["overload_rejections"] == 1
        assert snapshot["retries_observed"] == 3
        assert snapshot["last_crash_at"] == 123.5

    def test_unknown_field_refused(self):
        with pytest.raises(KeyError):
            RobustnessCounters().bump("no-such-counter")

    def test_shared_across_fork(self):
        counters = RobustnessCounters()
        pid = os.fork()
        if pid == 0:  # child bumps, parent observes
            counters.bump("worker_respawns", by=7)
            os._exit(0)
        os.waitpid(pid, 0)
        assert counters.snapshot()["worker_respawns"] == 7


# -- typed process-management errors ----------------------------------------------


class TestTypedProcessErrors:
    def test_stop_without_daemon_is_typed(self, tmp_path):
        with pytest.raises(DaemonNotRunningError):
            stop_daemon(tmp_path / "never.sock")

    def test_typed_errors_remain_runtime_errors(self):
        """Callers that still catch RuntimeError keep working."""
        for error_type in (
            DaemonStartupError, DaemonNotRunningError, DaemonStopTimeout,
        ):
            assert issubclass(error_type, RuntimeError)


# -- chaos: a real daemon with armed faults ---------------------------------------


def arm_faults(monkeypatch, tmp_path, spec: str) -> None:
    """Arm faults for a daemon about to be started (the detached
    process inherits the environment)."""
    monkeypatch.setenv(FAULTS_ENV, spec)
    monkeypatch.setenv(FAULTS_STATE_ENV, str(tmp_path / "fault-state"))


class TestChaos:
    def test_worker_sigkill_mid_request_client_retry_completes(
        self, served_model, test_urls, tmp_path, monkeypatch, sockpath
    ):
        """The headline chaos scenario: a worker is SIGKILLed after
        reading a request; the client's retry lands on surviving
        capacity and completes with the exact same answer."""
        model_path, identifier = served_model
        socket_path = sockpath("kill.sock")
        arm_faults(
            monkeypatch, tmp_path, "worker-kill:op=decisions,times=1"
        )
        start_daemon(model_path, socket_path, workers=2)
        try:
            with DaemonClient(socket_path, retry=FAST) as client:
                assert client.decisions(test_urls) == sparse_oracle(
                    identifier, test_urls
                )
                status = client.status()
            assert status["robustness"]["retries_observed"] >= 1
            # The death is noticed and the worker replaced on the next
            # supervise tick — poll briefly for the fleet counters.
            deadline = time.time() + 10
            while time.time() < deadline:
                with DaemonClient(socket_path, retry=FAST) as client:
                    robustness = client.status()["robustness"]
                if robustness["worker_respawns"] >= 1:
                    break
                time.sleep(0.1)
            assert robustness["worker_respawns"] >= 1
            assert robustness["last_crash_at"] is not None
        finally:
            stop_daemon(socket_path)

    def test_torn_response_client_retry_completes(
        self, served_model, test_urls, tmp_path, monkeypatch, sockpath
    ):
        model_path, identifier = served_model
        socket_path = sockpath("torn.sock")
        arm_faults(
            monkeypatch, tmp_path, "torn-frame:op=decisions,times=1"
        )
        start_daemon(model_path, socket_path, workers=1)
        try:
            with DaemonClient(socket_path, retry=FAST) as client:
                assert client.decisions(test_urls) == sparse_oracle(
                    identifier, test_urls
                )
        finally:
            stop_daemon(socket_path)

    def test_saturated_daemon_sheds_load_with_typed_overloaded(
        self, served_model, test_urls, tmp_path, monkeypatch, sockpath
    ):
        """With the single worker pinned in a slow request, new batch
        work is refused `overloaded` (never silently queued) while
        ping/status still answer from the parent."""
        model_path, identifier = served_model
        socket_path = sockpath("busy.sock")
        arm_faults(
            monkeypatch, tmp_path,
            "slow-handler:op=decisions,seconds=2.5,times=1",
        )
        start_daemon(model_path, socket_path, workers=1)
        slow_result = {}

        def slow_call():
            with DaemonClient(socket_path, retry=FAST) as client:
                slow_result["decisions"] = client.decisions(test_urls)

        try:
            pinned = threading.Thread(target=slow_call)
            pinned.start()
            time.sleep(0.6)  # let the slow request occupy the worker
            no_retry = RetryPolicy(retries=0, backoff=0.01)
            with DaemonClient(socket_path, retry=no_retry) as client:
                with pytest.raises(DaemonRequestError) as caught:
                    client.decisions(test_urls[:2])
            assert caught.value.code == "overloaded"
            # Health stays observable from the parent while saturated.
            with DaemonClient(socket_path, retry=FAST) as client:
                status = client.status()
            assert status["role"] == "parent"
            assert status["state"] == "ok"
            assert status["inflight"] == 1
            assert status["robustness"]["overload_rejections"] >= 1
            pinned.join(timeout=30)
            # The pinned request itself completed correctly.
            assert slow_result["decisions"] == sparse_oracle(
                identifier, test_urls
            )
        finally:
            stop_daemon(socket_path)

    def test_expired_deadline_is_typed_and_counted(
        self, served_model, test_urls, tmp_path, monkeypatch, sockpath
    ):
        model_path, _ = served_model
        socket_path = sockpath("late.sock")
        arm_faults(
            monkeypatch, tmp_path,
            "slow-handler:op=decisions,seconds=1.0,times=1",
        )
        start_daemon(model_path, socket_path, workers=1)
        try:
            policy = RetryPolicy(retries=0, backoff=0.01, deadline=0.3)
            with DaemonClient(socket_path, retry=policy) as client:
                with pytest.raises(DaemonRequestError) as caught:
                    client.decisions(test_urls[:5])
            assert caught.value.code == "deadline-exceeded"
            with DaemonClient(socket_path, retry=FAST) as client:
                status = client.status()
            assert status["robustness"]["deadline_expiries"] >= 1
        finally:
            stop_daemon(socket_path)

    def test_crash_loop_degrades_then_backoff_recovers(
        self, served_model, test_urls, tmp_path, monkeypatch, sockpath
    ):
        """Three injected deaths flip the daemon to `degraded` (status
        still answered, from the parent); once the backoff expires and
        the fault budget is spent, a respawned worker serves again and
        the state returns to `ok`."""
        model_path, identifier = served_model
        socket_path = sockpath("loop.sock")
        arm_faults(
            monkeypatch, tmp_path, "worker-kill:op=decisions,times=3"
        )
        monkeypatch.setenv("REPRO_SERVE_CRASH_THRESHOLD", "2")
        monkeypatch.setenv("REPRO_SERVE_BACKOFF_INITIAL", "0.4")
        start_daemon(model_path, socket_path, workers=1)
        no_retry = RetryPolicy(retries=0, backoff=0.01)
        try:
            saw_degraded = False
            deadline = time.time() + 60
            while time.time() < deadline:
                try:
                    with DaemonClient(socket_path, retry=no_retry) as client:
                        client.decisions(test_urls[:2])
                except (DaemonUnavailableError, DaemonRequestError):
                    pass  # the injected kill or an overloaded refusal
                with DaemonClient(socket_path, retry=FAST) as client:
                    status = client.status()
                if status["state"] == "degraded":
                    saw_degraded = True
                    break
                time.sleep(0.1)
            assert saw_degraded, "crash loop never degraded the daemon"
            assert status["robustness"]["last_crash_at"] is not None

            # Recovery: backoff expires, the kill budget (times=3) runs
            # out, and a respawned worker answers for real again.
            recovered = False
            while time.time() < deadline:
                try:
                    with DaemonClient(socket_path, retry=FAST) as client:
                        decisions = client.decisions(test_urls[:2])
                        status = client.status()
                    if status["state"] == "ok":
                        recovered = True
                        break
                except (DaemonUnavailableError, DaemonRequestError):
                    pass
                time.sleep(0.2)
            assert recovered, "daemon never recovered from the crash loop"
            assert decisions == sparse_oracle(identifier, test_urls[:2])
            assert status["robustness"]["worker_respawns"] >= 1
        finally:
            stop_daemon(socket_path)

    def test_sigterm_drains_in_flight_and_refuses_late_frames(
        self, served_model, test_urls, tmp_path, monkeypatch, sockpath
    ):
        """SIGTERM mid-request: the in-flight answer arrives complete
        and byte-identical; the next frame on the same connection gets
        a typed `shutting-down`, never a reset."""
        model_path, identifier = served_model
        socket_path = sockpath("drain.sock")
        arm_faults(
            monkeypatch, tmp_path,
            "slow-handler:op=decisions,seconds=1.2,times=1",
        )
        start_daemon(model_path, socket_path, workers=1)
        no_retry = RetryPolicy(retries=0, backoff=0.01)
        client = DaemonClient(socket_path, retry=no_retry)
        outcome = {}

        def in_flight():
            try:
                outcome["decisions"] = client.decisions(test_urls)
            except Exception as error:  # noqa: BLE001 - assert below
                outcome["error"] = error

        try:
            request = threading.Thread(target=in_flight)
            request.start()
            time.sleep(0.5)  # request is mid-dispatch in the worker
            signal_daemon(socket_path, signal.SIGTERM)
            request.join(timeout=30)
            assert "error" not in outcome, outcome.get("error")
            assert outcome["decisions"] == sparse_oracle(
                identifier, test_urls
            )
            # Same connection, inside the drain-notify window: the late
            # frame is answered with the typed retryable refusal.
            with pytest.raises(DaemonRequestError) as caught:
                client.ping()
            assert caught.value.code == "shutting-down"
        finally:
            client.close()
            # The daemon is already stopping; just wait it out.
            from repro.store.daemon import pidfile_for

            deadline = time.time() + 30
            while time.time() < deadline and pidfile_for(
                socket_path
            ).exists():
                time.sleep(0.1)
        assert not socket_path.exists()

    def test_oversized_batch_is_terminal_bad_request(
        self, served_model, sockpath
    ):
        """MAX_BATCH_URLS bounds per-request work with a terminal
        refusal (the identical batch could only be refused again)."""
        from repro.store.daemon import MAX_BATCH_URLS

        model_path, _ = served_model
        socket_path = sockpath("big.sock")
        start_daemon(model_path, socket_path, workers=1)
        try:
            urls = ["http://example.de/x"] * (MAX_BATCH_URLS + 1)
            with DaemonClient(socket_path, retry=FAST) as client:
                with pytest.raises(DaemonRequestError) as caught:
                    client.decisions(urls)
            assert caught.value.code == "bad-request"
            assert "split the batch" in str(caught.value)
        finally:
            stop_daemon(socket_path)
