"""Multi-process serving from one mapped artifact, and crawler handles."""

from __future__ import annotations

import pytest

from repro.core.pipeline import LanguageIdentifier
from repro.store import save_identifier, score_urls
from repro.store.serve import batched


@pytest.fixture(scope="module")
def model_path(small_train, tmp_path_factory):
    identifier = LanguageIdentifier("words", "NB", seed=0).fit(
        small_train.subsample(0.4, seed=2)
    )
    path = tmp_path_factory.mktemp("serve") / "nb.urlmodel"
    save_identifier(identifier, path)
    return path, identifier


class TestBatching:
    def test_batched_partitions_in_order(self):
        assert batched(list("abcdefg"), 3) == [["a", "b", "c"], ["d", "e", "f"], ["g"]]
        assert batched([], 4) == []

    def test_batch_size_validated(self):
        with pytest.raises(ValueError, match="batch_size"):
            batched(["x"], 0)


class TestScoring:
    def test_single_process_matches_identifier(self, model_path, small_bundle):
        path, identifier = model_path
        urls = small_bundle.odp_test.urls[:40]
        results = score_urls(path, urls, workers=1, batch_size=16)
        assert [result.url for result in results] == list(urls)
        best = identifier.classify_many(urls)
        for row, result in enumerate(results):
            expected = best[row].value if best[row] is not None else None
            assert result.best == expected

    def test_workers_share_one_artifact(self, model_path, small_bundle):
        """N pool workers mapping the same file must answer exactly like
        one in-process worker — order preserved, results identical."""
        path, _ = model_path
        urls = small_bundle.odp_test.urls[:60]
        single = score_urls(path, urls, workers=1, batch_size=13)
        multi = score_urls(path, urls, workers=3, batch_size=13)
        assert multi == single

    def test_positives_are_the_binary_answers(self, model_path):
        path, identifier = model_path
        url = "http://www.recherche.fr/produits1.html"
        (result,) = score_urls(path, [url], workers=1)
        expected = tuple(
            sorted(lang.value for lang in identifier.predict_languages(url))
        )
        assert result.positives == expected

    def test_workers_validated(self, model_path):
        path, _ = model_path
        with pytest.raises(ValueError, match="workers"):
            score_urls(path, ["http://a.de"], workers=-1)


class TestCrawlerHandles:
    def test_focused_crawl_accepts_artifact_path(self, model_path, small_bundle):
        from repro.crawler import focused_crawl, resolve_identifier
        from repro.linkgraph import build_link_graph

        path, identifier = model_path
        graph = build_link_graph(small_bundle.wc_test, seed=5)
        seeds = list(graph.nodes)[:3]
        from_path = focused_crawl(graph, seeds, "de", budget=20, identifier=path)
        from_fitted = focused_crawl(
            graph, seeds, "de", budget=20, identifier=identifier
        )
        assert from_path.crawl_order == from_fitted.crawl_order
        assert (
            resolve_identifier(str(path)).name
            == resolve_identifier(identifier).name
        )

    def test_resolve_identifier_rejects_junk(self):
        from repro.crawler import resolve_identifier

        with pytest.raises(TypeError, match="identifier"):
            resolve_identifier(12345)

    def test_store_handle_resolves(self, small_train, tmp_path):
        from repro.crawler import resolve_identifier
        from repro.store import ModelStore

        identifier = LanguageIdentifier("words", "NB", seed=0).fit(
            small_train.subsample(0.3, seed=1)
        )
        handle = ModelStore(tmp_path / "store").save(identifier)
        resolved = resolve_identifier(handle)
        assert resolved.name == identifier.name
