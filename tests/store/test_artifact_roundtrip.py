"""Save -> load equivalence against the sparse oracle.

The acceptance contract of the artifact store: for every algorithm with
a compiled lowering (NB, RE, RO, MM, ME) and every feature set it
supports, a saved-then-loaded model must reproduce the sparse reference
path *exactly* for decisions and within 1e-9 for scores.  Weights are
persisted as raw little-endian float64, so the loaded compiled backend
is bit-identical to the fitted one — equivalence to the oracle is then
inherited from the compiled-backend tests.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import LanguageIdentifier
from repro.languages import LANGUAGES
from repro.store import (
    ArtifactError,
    ServingIdentifier,
    load_identifier,
    save_identifier,
)

#: Every (algorithm, feature set) pair that round-trips through the
#: artifact store (the Markov chain is trigram-only by construction).
LOWERABLE = [
    ("NB", "words"),
    ("NB", "trigrams"),
    ("NB", "custom"),
    ("RE", "words"),
    ("RE", "trigrams"),
    ("RE", "custom"),
    ("RO", "words"),
    ("RO", "trigrams"),
    ("RO", "custom"),
    ("MM", "trigrams"),
    ("ME", "words"),
    ("ME", "trigrams"),
    ("ME", "custom"),
]


@pytest.fixture(scope="module")
def fitted_cache():
    cache: dict = {}
    return cache


def _fitted(algorithm, feature_set, small_train, cache):
    key = (algorithm, feature_set)
    if key not in cache:
        identifier = LanguageIdentifier(
            feature_set=feature_set, algorithm=algorithm, seed=0
        )
        cache[key] = identifier.fit(small_train.subsample(0.6, seed=3))
    return cache[key]


@pytest.mark.parametrize("algorithm,feature_set", LOWERABLE)
class TestRoundTrip:
    def test_decisions_byte_identical_to_sparse_oracle(
        self, algorithm, feature_set, small_train, small_bundle, tmp_path, fitted_cache
    ):
        identifier = _fitted(algorithm, feature_set, small_train, fitted_cache)
        path = tmp_path / "model.urlmodel"
        save_identifier(identifier, path)
        loaded = load_identifier(path)
        urls = small_bundle.odp_test.urls[:120]
        assert loaded.decisions(urls) == identifier._sparse_decisions(urls)

    def test_scores_within_tolerance_of_sparse_oracle(
        self, algorithm, feature_set, small_train, small_bundle, tmp_path, fitted_cache
    ):
        identifier = _fitted(algorithm, feature_set, small_train, fitted_cache)
        path = tmp_path / "model.urlmodel"
        save_identifier(identifier, path)
        loaded = load_identifier(path)
        urls = small_bundle.odp_test.urls[:60]
        batch_scores = loaded.scores_many(urls)
        for row, url in enumerate(urls):
            reference = identifier.scores(url)  # sparse reference path
            for language in LANGUAGES:
                assert batch_scores[language][row] == pytest.approx(
                    reference[language], abs=1e-9
                )

    def test_metadata_round_trips(
        self, algorithm, feature_set, small_train, tmp_path, fitted_cache
    ):
        identifier = _fitted(algorithm, feature_set, small_train, fitted_cache)
        path = tmp_path / "model.urlmodel"
        save_identifier(identifier, path)
        loaded = load_identifier(path)
        assert isinstance(loaded, ServingIdentifier)
        assert loaded.name == identifier.name
        assert loaded.feature_set == identifier.feature_set
        assert loaded.algorithm == identifier.algorithm
        assert loaded.seed == identifier.seed


class TestServingSurface:
    def test_evaluate_matches_fitted_identifier(
        self, small_train, small_bundle, tmp_path
    ):
        identifier = LanguageIdentifier("words", "NB", seed=0).fit(
            small_train.subsample(0.5, seed=1)
        )
        path = tmp_path / "nb.urlmodel"
        save_identifier(identifier, path)
        loaded = load_identifier(path)
        test = small_bundle.odp_test
        fitted_metrics = identifier.evaluate(test)
        loaded_metrics = loaded.evaluate(test)
        for language in LANGUAGES:
            assert (
                loaded_metrics[language].f_measure
                == fitted_metrics[language].f_measure
            )
        assert loaded.confusion(test).cells == identifier.confusion(test).cells

    def test_single_url_helpers(self, small_train, tmp_path):
        identifier = LanguageIdentifier("words", "NB", seed=0).fit(
            small_train.subsample(0.5, seed=1)
        )
        path = tmp_path / "nb.urlmodel"
        save_identifier(identifier, path)
        loaded = load_identifier(path)
        url = "http://www.recherche.fr/produits1.html"
        assert loaded.classify(url) == identifier.classify(url)
        assert loaded.predict_languages(url) == identifier.predict_languages(url)

    def test_loaded_identifier_resaves_identically(self, small_train, tmp_path):
        """A ServingIdentifier exposes enough state to be saved again
        (store replication) with identical content checksum."""
        identifier = LanguageIdentifier("trigrams", "MM", seed=0).fit(
            small_train.subsample(0.4, seed=2)
        )
        first = tmp_path / "first.urlmodel"
        second = tmp_path / "second.urlmodel"
        checksum_first = save_identifier(identifier, first)
        checksum_second = save_identifier(load_identifier(first), second)
        assert checksum_first == checksum_second


class TestUnlowerable:
    def test_sparse_only_identifier_is_rejected(self, small_train, tmp_path):
        identifier = LanguageIdentifier(
            "words", "NB", seed=0, backend="sparse"
        ).fit(small_train.subsample(0.3, seed=4))
        with pytest.raises(ArtifactError, match="no compiled backend"):
            save_identifier(identifier, tmp_path / "nope.urlmodel")

    def test_decision_tree_is_rejected(self, small_train, tmp_path):
        identifier = LanguageIdentifier("custom", "DT", seed=0).fit(
            small_train.subsample(0.3, seed=4)
        )
        with pytest.raises(ArtifactError, match="no compiled backend"):
            save_identifier(identifier, tmp_path / "nope.urlmodel")

    def test_baseline_is_rejected(self, tmp_path):
        identifier = LanguageIdentifier(algorithm="ccTLD+")
        with pytest.raises(ArtifactError, match="no compiled backend"):
            save_identifier(identifier, tmp_path / "nope.urlmodel")
