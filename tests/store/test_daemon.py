"""Daemon lifecycle, wire protocol, hot reload, and client error paths.

The long test here walks the full operator arc the docs promise:
start → score a batch (byte-identical to the sparse oracle) → SIGHUP
hot reload to a new artifact → byte-identical to the *new* oracle →
graceful stop with every daemon-created file removed.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import time
import urllib.error
import urllib.request

import pytest

from repro.core.pipeline import LanguageIdentifier
from repro.store import save_identifier, write_artifact
from repro.store.client import (
    DaemonClient,
    DaemonRequestError,
    DaemonUnavailableError,
    RemoteIdentifier,
    is_handle,
    parse_handle,
)
from repro.store.daemon import (
    pidfile_for,
    read_pid,
    start_daemon,
    stop_daemon,
)
from repro.store.format import MAGIC
from repro.store.wire import (
    FrameTooLargeError,
    WireError,
    recv_message,
    send_message,
)


@pytest.fixture(scope="module")
def oracle_pair(small_train):
    """Two distinct fitted identifiers (different algorithms, so their
    decisions demonstrably differ) — the before/after of a hot reload."""
    train = small_train.subsample(0.4, seed=2)
    first = LanguageIdentifier("words", "NB", seed=0).fit(train)
    second = LanguageIdentifier("words", "RE", seed=1).fit(train)
    return first, second


@pytest.fixture(scope="module")
def test_urls(small_bundle):
    return small_bundle.odp_test.urls[:60]


def sparse_oracle(identifier, urls):
    """The reference answers, keyed by language code (wire format)."""
    return {
        language.value: values
        for language, values in identifier._sparse_decisions(urls).items()
    }


def process_gone(pid, timeout=10.0):
    """True once ``pid`` no longer runs (a zombie awaiting its reaper
    counts as gone — under some inits nothing ever collects it)."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        try:
            with open(f"/proc/{pid}/stat") as handle:
                if handle.read().rsplit(")", 1)[1].split()[0] == "Z":
                    return True
        except OSError:
            return True
        time.sleep(0.05)
    return False


def wait_for_checksum(client, checksum, timeout=30.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        status = client.status()
        if status["model"]["checksum"] == checksum:
            return status
        time.sleep(0.1)
    raise AssertionError(f"daemon never started serving checksum {checksum}")


class TestWire:
    """Framing unit tests over an in-process socket pair."""

    def test_roundtrip(self):
        a, b = socket.socketpair()
        with a, b:
            send_message(a, {"op": "ping", "v": 1})
            assert recv_message(b) == {"op": "ping", "v": 1}

    def test_oversized_frame_rejected_without_reading(self):
        a, b = socket.socketpair()
        with a, b:
            # Bits 31/30/29 are the deadline/correlation/trace flags, so
            # the largest flag-free declared length is (1 << 29) - 1; any
            # value above MAX_FRAME_BYTES in that space must be refused
            # before a single body byte is read.
            a.sendall((1 << 28).to_bytes(4, "big"))
            with pytest.raises(FrameTooLargeError):
                recv_message(b)

    def test_non_object_body_rejected(self):
        a, b = socket.socketpair()
        with a, b:
            body = b"[1, 2]"
            a.sendall(len(body).to_bytes(4, "big") + body)
            with pytest.raises(WireError, match="JSON object"):
                recv_message(b)


class TestHandles:
    def test_parse_handle(self):
        assert parse_handle("repro://model.sock") == "model.sock"
        assert parse_handle("repro:///run/repro.sock") == "/run/repro.sock"

    def test_non_handles_rejected(self):
        assert not is_handle("model.urlmodel")
        assert not is_handle(123)
        with pytest.raises(ValueError, match="serving handle"):
            parse_handle("model.urlmodel")
        with pytest.raises(ValueError, match="empty socket path"):
            parse_handle("repro://")


class TestLifecycle:
    def test_start_score_reload_stop(
        self, oracle_pair, test_urls, tmp_path, sockpath
    ):
        """The full arc: every decision byte-identical to the sparse
        oracle of whichever artifact generation is live."""
        first, second = oracle_pair
        model_path = tmp_path / "live.urlmodel"
        socket_path = sockpath("live.sock")
        save_identifier(first, model_path)
        first_bytes = model_path.read_bytes()  # kept for the rollback gate

        pid = start_daemon(model_path, socket_path, workers=2)
        try:
            assert read_pid(socket_path) == pid
            with DaemonClient(socket_path) as client:
                status = client.status()
                generation = status["generation"]
                first_checksum = status["model"]["checksum"]
                assert generation == 1
                assert status["model"]["name"] == "NB/words"
                rollout = status["model"]["rollout"]
                assert rollout["created_at"]
                assert rollout["train_corpus"] == first.train_fingerprint

                # Batch answers == the sparse oracle, byte for byte.
                assert client.decisions(test_urls) == sparse_oracle(
                    first, test_urls
                )
                # Scores survive the JSON hop bit-identically.
                reference = first.scores_many(test_urls)
                assert client.score(test_urls) == {
                    language.value: values
                    for language, values in reference.items()
                }
                # classify rows agree with the in-process kernel.
                rows = client.classify(test_urls[:10])
                best = first.classify_many(test_urls[:10])
                assert [row.best for row in rows] == [
                    b.value if b else None for b in best
                ]

                # Per-worker request accounting: one persistent
                # connection lands every op above on one worker, whose
                # status block must count them all with latencies.
                requests = client.status()["requests"]
                assert requests["errors"] == 0
                for op in ("status", "decisions", "score", "classify"):
                    assert requests["by_op"][op] >= 1
                latency = requests["latency_ms"]
                assert latency["count"] == requests["total"] >= 4
                assert sum(latency["counts"]) == latency["count"]
                assert latency["p50_ms"] is not None

                # Gate: an artifact without rollout metadata is refused.
                import numpy as np

                write_artifact(
                    model_path,
                    {"kind": "repro/url-language-identifier"},
                    {"junk": np.zeros(3)},
                )
                client.reload()
                time.sleep(1.0)
                status = client.status()
                assert status["model"]["checksum"] == first_checksum
                assert status["generation"] == generation

                # SIGHUP to the real replacement: generation handover.
                save_identifier(second, model_path)
                os.kill(pid, signal.SIGHUP)
                deadline = time.time() + 30
                while time.time() < deadline:
                    status = client.status()
                    if status["model"]["checksum"] != first_checksum:
                        break
                    time.sleep(0.1)
                assert status["model"]["name"] == "RE/words"
                assert status["generation"] == generation + 1
                assert client.decisions(test_urls) == sparse_oracle(
                    second, test_urls
                )

                # Gate: restoring the older artifact is a refused rollback.
                second_checksum = status["model"]["checksum"]
                model_path.write_bytes(first_bytes)
                client.reload()
                time.sleep(1.0)
                assert (
                    client.status()["model"]["checksum"] == second_checksum
                )
        finally:
            stopped = stop_daemon(socket_path)

        assert stopped == pid
        assert not socket_path.exists()
        assert not pidfile_for(socket_path).exists()
        assert process_gone(pid)

    def test_remote_identifier_and_crawler_handle(
        self, oracle_pair, test_urls, tmp_path, sockpath
    ):
        """``repro://`` handles resolve to a weightless identifier whose
        answers match the daemon's model exactly."""
        from repro.crawler import resolve_identifier

        first, _ = oracle_pair
        model_path = tmp_path / "handle.urlmodel"
        socket_path = sockpath("handle.sock")
        save_identifier(first, model_path)
        start_daemon(model_path, socket_path, workers=1)
        try:
            remote = resolve_identifier(f"repro://{socket_path}")
            assert isinstance(remote, RemoteIdentifier)
            assert remote.name == "NB/words"
            assert remote.decisions(test_urls) == first._sparse_decisions(
                test_urls
            )
            assert remote.scores_many(test_urls) == first.scores_many(
                test_urls
            )
            # The full IdentifierBase surface works over the wire.
            assert remote.classify_many(test_urls[:5]) == first.classify_many(
                test_urls[:5]
            )
        finally:
            stop_daemon(socket_path)


class TestHttpFrontend:
    def test_http_serves_the_same_operations(
        self, oracle_pair, test_urls, tmp_path, sockpath
    ):
        first, _ = oracle_pair
        model_path = tmp_path / "http.urlmodel"
        socket_path = sockpath("http.sock")
        save_identifier(first, model_path)
        start_daemon(model_path, socket_path, workers=1, http_port=0)
        try:
            with DaemonClient(socket_path) as client:
                port = client.status()["http_port"]
            base = f"http://127.0.0.1:{port}"

            with urllib.request.urlopen(f"{base}/healthz") as response:
                assert response.read() == b"ok\n"

            with urllib.request.urlopen(f"{base}/v1/status") as response:
                status = json.loads(response.read())
            assert status["ok"] and status["model"]["name"] == "NB/words"

            request = urllib.request.Request(
                f"{base}/v1/classify",
                data=json.dumps({"urls": test_urls[:5]}).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request) as response:
                body = json.loads(response.read())
            best = first.classify_many(test_urls[:5])
            assert [row["best"] for row in body["results"]] == [
                b.value if b else None for b in best
            ]

            bad = urllib.request.Request(
                f"{base}/v1/classify", data=b"[]", method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as caught:
                urllib.request.urlopen(bad)
            assert caught.value.code == 400

            # A body "op" must not widen a batch endpoint: this stays a
            # classify — and must NOT stop the daemon.
            smuggled = urllib.request.Request(
                f"{base}/v1/classify",
                data=json.dumps({"urls": [], "op": "stop"}).encode(),
                method="POST",
            )
            with urllib.request.urlopen(smuggled) as response:
                body = json.loads(response.read())
            assert body["ok"] and body["results"] == []
            with urllib.request.urlopen(f"{base}/healthz") as response:
                assert response.read() == b"ok\n"  # still alive

            # Oversized Content-Length is refused before buffering.
            oversized = urllib.request.Request(
                f"{base}/v1/classify",
                data=b"{}",
                headers={"Content-Length": str(64 * 1024 * 1024)},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as caught:
                urllib.request.urlopen(oversized)
            assert caught.value.code == 413
        finally:
            stop_daemon(socket_path)


class TestClientErrorPaths:
    def test_daemon_down_fails_fast(self, sockpath):
        with DaemonClient(sockpath("nothing.sock"), timeout=2.0) as client:
            with pytest.raises(DaemonUnavailableError, match="serve start"):
                client.ping()

    def test_stale_socket_file(self, sockpath):
        """A socket file whose daemon is gone refuses connections."""
        stale = sockpath("stale.sock")
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(stale))
        listener.close()  # file remains, nobody listens
        with DaemonClient(stale, timeout=2.0) as client:
            with pytest.raises(DaemonUnavailableError):
                client.ping()

    def test_protocol_version_gate(self, oracle_pair, tmp_path, sockpath):
        first, _ = oracle_pair
        model_path = tmp_path / "proto.urlmodel"
        socket_path = sockpath("proto.sock")
        save_identifier(first, model_path)
        start_daemon(model_path, socket_path, workers=1)
        try:
            with DaemonClient(socket_path, protocol_version=99) as client:
                with pytest.raises(DaemonRequestError) as caught:
                    client.ping()
                assert caught.value.code == "protocol-version"
            with DaemonClient(socket_path) as client:
                with pytest.raises(DaemonRequestError) as caught:
                    client.request("no-such-op")
                assert caught.value.code == "unknown-op"
                with pytest.raises(DaemonRequestError) as caught:
                    client.request("classify", urls="not-a-list")
                assert caught.value.code == "bad-request"
        finally:
            stop_daemon(socket_path)

    def test_double_start_refused(self, oracle_pair, tmp_path, sockpath):
        """Starting over a live socket must fail loudly — never report
        the old daemon as serving the new model."""
        first, _ = oracle_pair
        model_path = tmp_path / "dup.urlmodel"
        socket_path = sockpath("dup.sock")
        save_identifier(first, model_path)
        start_daemon(model_path, socket_path, workers=1)
        try:
            with pytest.raises(RuntimeError, match="already serving"):
                start_daemon(model_path, socket_path, workers=1)
        finally:
            stop_daemon(socket_path)

    def test_version_mismatched_artifact_refuses_to_boot(
        self, tmp_path, sockpath
    ):
        """A daemon pointed at an artifact from an incompatible format
        version dies at startup with the reason in its log."""
        bogus = tmp_path / "future.urlmodel"
        header = json.dumps({"format_version": 999, "buffers": {}}).encode()
        bogus.write_bytes(MAGIC + len(header).to_bytes(8, "little") + header)
        with pytest.raises(RuntimeError, match="died during startup"):
            start_daemon(
                bogus, sockpath("future.sock"), workers=1, ready_timeout=20
            )

    def test_stop_without_daemon(self, tmp_path):
        with pytest.raises(RuntimeError, match="pidfile"):
            stop_daemon(tmp_path / "never.sock")


class TestRolloutMetadata:
    def test_store_surfaces_rollout(self, oracle_pair, tmp_path):
        """ModelStore.list/describe expose the created-at stamp and the
        train-corpus fingerprint without loading any weights."""
        from repro.store import ModelStore

        first, _ = oracle_pair
        store = ModelStore(tmp_path / "store")
        handle = store.save(first, name="nb")
        assert handle.train_corpus == first.train_fingerprint
        assert handle.created_at is not None
        (listed,) = store.list()
        assert listed.created_at == handle.created_at
        assert listed.train_corpus == handle.train_corpus

    def test_resave_preserves_provenance(self, oracle_pair, tmp_path):
        """Copying weights through load→save keeps train_corpus but
        refreshes created_at (the rollback gate's ordering key)."""
        from repro.store import load_identifier

        first, _ = oracle_pair
        original = tmp_path / "orig.urlmodel"
        copy = tmp_path / "copy.urlmodel"
        save_identifier(first, original)
        served = load_identifier(original)
        assert served.train_fingerprint == first.train_fingerprint
        save_identifier(served, copy)
        resaved = load_identifier(copy)
        assert resaved.rollout["train_corpus"] == first.train_fingerprint
        assert resaved.rollout["created_at"] >= served.rollout["created_at"]
