"""End-to-end observability: wire-level tracing through the daemon,
Prometheus exposition on ``GET /metrics``, the span ring on
``GET /v1/traces``, per-language drift telemetry in ``serve status``,
and trace ids stamped onto the structured JSON event log.

One daemon boot serves the whole module (tracing is per-client, so a
traced and an untraced client share it); assertions follow the path a
single traced classify takes: client → wire frame → worker span →
ring buffer → scrape → log line.
"""

from __future__ import annotations

import asyncio
import json
import time
import urllib.error
import urllib.request

import pytest

from repro.core.pipeline import LanguageIdentifier
from repro.obs.prom import CONTENT_TYPE as PROM_CONTENT_TYPE
from repro.store import save_identifier
from repro.store.client import AsyncRemoteIdentifier, DaemonClient
from repro.store.daemon import start_daemon, stop_daemon

from ..obs.test_prom import parse_exposition


@pytest.fixture(scope="module")
def fitted(small_train):
    train = small_train.subsample(0.3, seed=5)
    return LanguageIdentifier("words", "NB", seed=0).fit(train)


@pytest.fixture(scope="module")
def obs_daemon(fitted, tmp_path_factory, sockpath_module):
    """A JSON-logging daemon with an HTTP frontend, up for the module."""
    tmp_path = tmp_path_factory.mktemp("obs")
    model_path = tmp_path / "obs.urlmodel"
    socket_path = sockpath_module("obs.sock")
    save_identifier(fitted, model_path)
    start_daemon(
        model_path, socket_path, workers=1, http_port=0, log_json=True
    )
    try:
        with DaemonClient(socket_path) as client:
            port = client.status()["http_port"]
        yield socket_path, f"http://127.0.0.1:{port}"
    finally:
        stop_daemon(socket_path)


@pytest.fixture(scope="module")
def sockpath_module(tmp_path_factory):
    """Module-scoped twin of the function-scoped ``sockpath`` fixture
    (unix socket paths must stay under the AF_UNIX length limit)."""
    import tempfile
    from pathlib import Path

    base = Path(tempfile.mkdtemp(prefix="repro-obs-", dir="/tmp"))
    yield lambda name: base / name
    for leftover in base.glob("*"):
        leftover.unlink(missing_ok=True)
    base.rmdir()


URLS = [
    "http://www.example.de/nachrichten/wirtschaft",
    "http://example.fr/actualites/page",
    "http://example.com/news/business/today",
    "http://example.es/noticias/deportes",
] * 3


class TestTracedRequests:
    def test_trace_id_flows_client_to_span_ring(self, obs_daemon):
        socket_path, _ = obs_daemon
        with DaemonClient(socket_path, tracing=True) as client:
            client.classify(URLS)
            trace = client.last_trace
            assert trace is not None
            assert len(trace["trace_id"]) == 32
            assert trace["server_span_id"] not in (None, trace["span_id"])
            spans = client.traces()
        (span,) = [s for s in spans if s["trace"] == trace["trace_id"]]
        assert span["span"] == trace["server_span_id"]
        assert span["parent"] == trace["span_id"]
        assert span["op"] == "classify" and span["ok"] is True
        assert span["ms"] > 0.0
        for name in ("accept", "dispatch", "respond"):
            assert name in span["stages_ms"]
        # The pipeline marks its own stages inside dispatch.
        assert "extract" in span["stages_ms"]
        assert "matmul" in span["stages_ms"]

    def test_untraced_requests_record_no_span(self, obs_daemon):
        socket_path, _ = obs_daemon
        with DaemonClient(socket_path) as plain:
            assert plain.tracing is False
            before = plain.request("traces")["recorded"]
            plain.classify(URLS[:2])
            assert plain.last_trace is None
            assert plain.request("traces")["recorded"] == before

    def test_each_traced_request_mints_a_fresh_trace(self, obs_daemon):
        socket_path, _ = obs_daemon
        with DaemonClient(socket_path, tracing=True) as client:
            client.ping()
            first = client.last_trace["trace_id"]
            client.ping()
            assert client.last_trace["trace_id"] != first

    def test_async_client_traces_too(self, obs_daemon):
        socket_path, _ = obs_daemon

        async def run():
            remote = AsyncRemoteIdentifier.connect(
                socket_path, tracing=True
            )
            async with remote:
                await remote.client.aclassify(URLS[:4])
                trace = remote.client.last_trace
                assert trace is not None
                spans = await remote.client.atraces()
            matching = [
                s for s in spans if s["trace"] == trace["trace_id"]
            ]
            assert matching and matching[-1]["parent"] == trace["span_id"]

        asyncio.run(run())

    def test_traces_limit_is_validated(self, obs_daemon):
        socket_path, _ = obs_daemon
        from repro.store.client import DaemonRequestError

        with DaemonClient(socket_path) as client:
            with pytest.raises(DaemonRequestError) as caught:
                client.request("traces", limit=0)
            assert caught.value.code == "bad-request"


class TestDriftTelemetry:
    def test_classify_traffic_moves_the_drift_block(self, obs_daemon):
        socket_path, _ = obs_daemon
        with DaemonClient(socket_path) as client:
            before = client.status()["drift"]["current"]["rows"]
            client.classify(URLS)
            drift = client.status()["drift"]
            assert drift["current"]["rows"] >= before + len(URLS)
            assert set(drift["current"]["decisions"]) >= {"en", "de", "fr"}
            assert drift["window_rows"] > 0


class TestHttpExposition:
    def test_metrics_endpoint_speaks_prometheus(self, obs_daemon):
        socket_path, base = obs_daemon
        with DaemonClient(socket_path, tracing=True) as client:
            client.classify(URLS)
        # Request counters are per-process: the scrape endpoint lives in
        # the parent, so drive one batch through the HTTP frontend too.
        request = urllib.request.Request(
            f"{base}/v1/classify",
            data=json.dumps({"urls": URLS[:3]}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request) as response:
            assert json.loads(response.read())["ok"]
        with urllib.request.urlopen(f"{base}/metrics") as response:
            assert response.headers["Content-Type"] == PROM_CONTENT_TYPE
            text = response.read().decode("utf-8")
        types, samples = parse_exposition(text)
        assert types["repro_requests_total"] == "counter"
        assert types["repro_request_latency_seconds"] == "histogram"
        values = {
            name: value for name, labels, value in samples if not labels
        }
        # The span ring and drift banks are fork-shared, so the parent's
        # scrape sees the socket workers' traffic.
        assert values["repro_trace_spans_total"] >= 1.0
        by_op = {
            labels.get("op"): value
            for name, labels, value in samples
            if name == "repro_requests_total"
        }
        assert by_op.get("classify", 0.0) >= 1.0
        drift_rows = [
            value for name, labels, value in samples
            if name == "repro_drift_rows_total"
            and labels.get("bank") == "current"
        ]
        assert drift_rows and drift_rows[0] >= float(len(URLS))

    def test_traces_endpoint_serves_the_ring(self, obs_daemon):
        socket_path, base = obs_daemon
        with DaemonClient(socket_path, tracing=True) as client:
            client.ping()
            trace_id = client.last_trace["trace_id"]
        with urllib.request.urlopen(f"{base}/v1/traces") as response:
            body = json.loads(response.read())
        assert body["ok"] and body["capacity"] >= 1
        assert any(s["trace"] == trace_id for s in body["traces"])
        with urllib.request.urlopen(f"{base}/v1/traces?limit=1") as response:
            limited = json.loads(response.read())
        assert len(limited["traces"]) == 1

    def test_traces_endpoint_rejects_bad_limit(self, obs_daemon):
        _, base = obs_daemon
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(f"{base}/v1/traces?limit=zero")
        assert caught.value.code == 400


class TestJsonEventLog:
    def test_trace_id_lands_in_the_event_log(self, obs_daemon, sockpath_module):
        socket_path, _ = obs_daemon
        log_path = socket_path.with_name(socket_path.name + ".log")
        with DaemonClient(socket_path, tracing=True) as client:
            client.ping()
            trace_id = client.last_trace["trace_id"]
        # The worker logs the span *after* answering, so poll briefly.
        deadline = time.time() + 10.0
        while True:
            events = []
            for line in log_path.read_text().splitlines():
                try:
                    events.append(json.loads(line))
                except ValueError:
                    pytest.fail(
                        f"non-JSON line in --log-json log: {line!r}"
                    )
            matching = [
                e for e in events
                if e["event"] == "request" and e.get("trace") == trace_id
            ]
            if matching or time.time() > deadline:
                break
            time.sleep(0.05)
        assert any(e["event"] == "daemon-start" for e in events)
        (request,) = matching
        assert request["op"] == "ping" and request["ok"] is True
        assert request["role"] == "worker"
