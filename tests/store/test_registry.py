"""The ModelStore directory registry: save/load/list/verify."""

from __future__ import annotations

import pytest

from repro.core.pipeline import LanguageIdentifier
from repro.store import (
    ArtifactChecksumError,
    ArtifactError,
    ModelHandle,
    ModelStore,
)


@pytest.fixture(scope="module")
def nb_words(small_train):
    return LanguageIdentifier("words", "NB", seed=0).fit(
        small_train.subsample(0.4, seed=2)
    )


@pytest.fixture()
def store(tmp_path):
    return ModelStore(tmp_path / "models")


class TestSaveLoad:
    def test_save_returns_descriptive_handle(self, store, nb_words):
        handle = store.save(nb_words)
        assert isinstance(handle, ModelHandle)
        assert handle.name == "nb-words"
        assert handle.label == "NB/words"
        assert handle.algorithm == "NB"
        assert handle.feature_set == "words"
        assert handle.n_features > 0
        assert handle.nbytes > 0
        assert len(handle.checksum) == 64  # sha256 hex

    def test_load_round_trips(self, store, nb_words, small_bundle):
        store.save(nb_words, name="triage")
        loaded = store.load("triage")
        urls = small_bundle.odp_test.urls[:50]
        assert loaded.decisions(urls) == nb_words.decisions(urls)

    def test_handle_load_equals_store_load(self, store, nb_words):
        handle = store.save(nb_words)
        url = "http://www.recherche.fr/produits.html"
        assert handle.load().classify(url) == store.load(handle.name).classify(url)

    def test_list_and_contains(self, store, nb_words):
        assert store.list() == []
        store.save(nb_words, name="one")
        store.save(nb_words, name="two")
        assert [handle.name for handle in store.list()] == ["one", "two"]
        assert "one" in store
        assert "missing" not in store

    def test_list_skips_foreign_files(self, store, nb_words):
        store.save(nb_words, name="good")
        (store.root / "stray.urlmodel").write_bytes(b"not an artifact at all")
        # A file named exactly ".urlmodel" would yield an empty model
        # name; list() must skip it rather than crash.
        (store.root / ".urlmodel").write_bytes(b"nameless stray")
        assert [handle.name for handle in store.list()] == ["good"]

    def test_overwrite_is_atomic_update(self, store, nb_words):
        first = store.save(nb_words, name="model")
        second = store.save(nb_words, name="model")
        assert first.checksum == second.checksum
        assert len(store.list()) == 1

    def test_delete(self, store, nb_words):
        store.save(nb_words, name="doomed")
        store.delete("doomed")
        assert "doomed" not in store
        store.delete("doomed")  # second delete is a no-op


class TestErrors:
    def test_load_missing_name(self, store):
        with pytest.raises(ArtifactError, match="not in the store"):
            store.load("ghost")

    def test_flat_names_enforced(self, store):
        with pytest.raises(ValueError, match="flat"):
            store.path("../escape")

    def test_verify_detects_corruption(self, store, nb_words):
        handle = store.save(nb_words, name="model")
        assert store.verify("model") == handle.checksum
        data = bytearray(handle.path.read_bytes())
        data[-3] ^= 0x01
        handle.path.write_bytes(bytes(data))
        with pytest.raises(ArtifactChecksumError):
            store.verify("model")

    def test_verify_missing_name(self, store):
        with pytest.raises(ArtifactError, match="not in the store"):
            store.verify("ghost")


class TestRolloutAndOrdering:
    def test_handle_surfaces_the_rollout_stamp(self, store, nb_words):
        handle = store.save(nb_words)
        assert handle.rollout["created_at"] == handle.created_at
        assert handle.rollout["train_corpus"] == handle.train_corpus
        assert handle.train_corpus == nb_words.train_fingerprint
        assert len(handle.train_corpus) == 64  # corpus sha256

    def test_as_dict_is_json_ready(self, store, nb_words):
        import json

        handle = store.save(nb_words, name="dump-me")
        payload = json.loads(json.dumps(handle.as_dict()))
        assert payload["name"] == "dump-me"
        assert payload["checksum"] == handle.checksum
        assert payload["path"] == str(handle.path)
        assert payload["rollout"]["train_corpus"] == handle.train_corpus

    def test_list_orders_by_name_not_filename(self, store, nb_words):
        # "a-b.urlmodel" sorts before "a.urlmodel" ("-" < "."), but the
        # *names* sort the other way; the listing promises name order.
        store.save(nb_words, name="a-b")
        store.save(nb_words, name="a")
        assert [handle.name for handle in store.list()] == ["a", "a-b"]
