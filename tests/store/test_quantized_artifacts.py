"""Float32-quantised model artifacts: round-trip, bounds, refusal, serving.

The quantisation contract (:data:`repro.store.QUANTIZED_SCORE_TOLERANCE`):
a ``--dtype float32`` artifact halves the mmapped weight matrix, its
``decisions()`` stay byte-identical to the float64 original on real
corpora, and each score moves by at most ``tolerance * (1 + sum_i x_i *
|w64_i|)``.  Artifacts declare quantisation through the ``weights_dtype``
header flag; readers refuse unknown flags/values and flag/buffer
mismatches rather than mis-reading, and the payload checksum still
guards the quantised bytes.  The serving pool and the bulk engine must
serve a quantised artifact end to end with unchanged answers.
"""

from __future__ import annotations

import gzip
import json

import numpy as np
import pytest

from repro import bulk
from repro.core.pipeline import LanguageIdentifier
from repro.store import (
    QUANTIZED_SCORE_TOLERANCE,
    ArtifactChecksumError,
    ArtifactError,
    ArtifactFile,
    load_identifier,
    save_identifier,
    score_urls,
)
from repro.store.format import MAGIC, _align

#: One matmul-carrying representative per scorer family, plus the
#: column-free rank order (whose float32 artifact is bit-exact).
QUANTIZABLE = [
    ("NB", "words"),
    ("NB", "trigrams"),
    ("RE", "trigrams"),
    ("ME", "words"),
    ("MM", "trigrams"),
    ("RO", "words"),
]


@pytest.fixture(scope="module")
def fitted_cache():
    return {}


def _fitted(algorithm, feature_set, small_train, cache):
    key = (algorithm, feature_set)
    if key not in cache:
        identifier = LanguageIdentifier(
            feature_set=feature_set, algorithm=algorithm, seed=0
        )
        cache[key] = identifier.fit(small_train.subsample(0.5, seed=3))
    return cache[key]


def _rewrite_header(path, mutate):
    """Rewrite an artifact's header in place (payload untouched).

    Buffer offsets are relative to the payload start, so re-padding
    after a header edit keeps the payload valid — exactly how a future
    writer with new flags would lay the file out.
    """
    raw = path.read_bytes()
    header_length = int.from_bytes(raw[len(MAGIC) : len(MAGIC) + 8], "little")
    header_end = len(MAGIC) + 8 + header_length
    header = json.loads(raw[len(MAGIC) + 8 : header_end])
    payload = raw[_align(header_end) :]
    mutate(header)
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    payload_start = _align(len(MAGIC) + 8 + len(header_bytes))
    padding = payload_start - len(MAGIC) - 8 - len(header_bytes)
    path.write_bytes(
        MAGIC
        + len(header_bytes).to_bytes(8, "little")
        + header_bytes
        + b"\x00" * padding
        + payload
    )


@pytest.mark.parametrize("algorithm,feature_set", QUANTIZABLE)
class TestQuantizedRoundTrip:
    def test_decisions_byte_identical(
        self, algorithm, feature_set, small_train, small_bundle, tmp_path, fitted_cache
    ):
        identifier = _fitted(algorithm, feature_set, small_train, fitted_cache)
        path = tmp_path / "model.urlmodel"
        save_identifier(identifier, path, dtype="float32")
        loaded = load_identifier(path)
        if identifier.compiled.stacked_columns is None:
            # No matmul columns (rank order): nothing to quantise, so
            # the artifact stays flag-free and exact.
            assert loaded.weights_dtype == "float64"
        else:
            assert loaded.weights_dtype == "float32"
        urls = small_bundle.odp_test.urls[:120]
        assert loaded.decisions(urls) == identifier._sparse_decisions(urls)

    def test_scores_within_documented_bound(
        self, algorithm, feature_set, small_train, small_bundle, tmp_path, fitted_cache
    ):
        identifier = _fitted(algorithm, feature_set, small_train, fitted_cache)
        compiled = identifier.compiled
        path = tmp_path / "model.urlmodel"
        save_identifier(identifier, path, dtype="float32")
        loaded = load_identifier(path)
        urls = small_bundle.odp_test.urls[:60]
        exact = compiled.scores_matrix(urls)
        quantised = loaded.compiled.scores_matrix(urls)
        if compiled.stacked_columns is None:
            # Rank order carries no matmul columns: nothing quantises.
            assert np.array_equal(exact, quantised)
            return
        # Per-row weighted mass sum_i x_i * |w64_i| over every column the
        # scorer contributes — the scale the tolerance contract is
        # relative to.
        batch = compiled.batch(urls)
        mass = batch.matmul(np.abs(compiled.stacked_columns))
        for column, (language, _) in enumerate(compiled.scorers.items()):
            block = compiled.column_slices[language]
            bound = QUANTIZED_SCORE_TOLERANCE * (
                1.0 + mass[:, block].sum(axis=1)
            )
            delta = np.abs(exact[:, column] - quantised[:, column])
            assert (delta <= bound).all()

    def test_float64_dtype_is_exact_default(
        self, algorithm, feature_set, small_train, tmp_path, fitted_cache
    ):
        identifier = _fitted(algorithm, feature_set, small_train, fitted_cache)
        default = save_identifier(identifier, tmp_path / "a.urlmodel")
        explicit = save_identifier(
            identifier, tmp_path / "b.urlmodel", dtype="float64"
        )
        assert default == explicit  # same payload checksum
        assert ArtifactFile(tmp_path / "b.urlmodel").flags == {}


class TestFlagsAndRefusal:
    @pytest.fixture()
    def quantized_path(self, small_train, tmp_path, fitted_cache):
        identifier = _fitted("NB", "words", small_train, fitted_cache)
        path = tmp_path / "model.urlmodel"
        save_identifier(identifier, path, dtype="float32")
        return path

    def test_flag_written_and_resave_preserves_it(self, quantized_path, tmp_path):
        assert ArtifactFile(quantized_path).flags == {
            "weights_dtype": "float32"
        }
        resaved = tmp_path / "resaved.urlmodel"
        save_identifier(load_identifier(quantized_path), resaved)
        assert ArtifactFile(resaved).flags == {"weights_dtype": "float32"}

    def test_unsupported_dtype_rejected_at_save(
        self, small_train, tmp_path, fitted_cache
    ):
        identifier = _fitted("NB", "words", small_train, fitted_cache)
        with pytest.raises(ArtifactError, match="float16"):
            save_identifier(
                identifier, tmp_path / "m.urlmodel", dtype="float16"
            )

    def test_unknown_flag_key_refused(self, quantized_path):
        _rewrite_header(
            quantized_path,
            lambda header: header["flags"].update(compression="zstd"),
        )
        with pytest.raises(ArtifactError, match="compression"):
            load_identifier(quantized_path)

    def test_unknown_dtype_value_refused(self, quantized_path):
        _rewrite_header(
            quantized_path,
            lambda header: header["flags"].update(weights_dtype="float16"),
        )
        with pytest.raises(ArtifactError, match="float16"):
            load_identifier(quantized_path)

    def test_flag_buffer_mismatch_refused(self, quantized_path):
        _rewrite_header(quantized_path, lambda header: header.pop("flags"))
        with pytest.raises(ArtifactError, match="inconsistent"):
            load_identifier(quantized_path)

    def test_checksum_still_guards_quantised_payload(self, quantized_path):
        artifact = ArtifactFile(quantized_path)
        payload_offset = len(quantized_path.read_bytes()) - 1
        artifact.close()
        raw = bytearray(quantized_path.read_bytes())
        raw[payload_offset] ^= 0xFF
        quantized_path.write_bytes(bytes(raw))
        with pytest.raises(ArtifactChecksumError):
            ArtifactFile(quantized_path).verify()


class TestQuantizedServing:
    @pytest.fixture(scope="class")
    def model_pair(self, small_train, tmp_path_factory):
        identifier = LanguageIdentifier("words", "NB", seed=0).fit(
            small_train.subsample(0.5, seed=3)
        )
        root = tmp_path_factory.mktemp("quantized-serving")
        exact, quantised = root / "m64.urlmodel", root / "m32.urlmodel"
        save_identifier(identifier, exact)
        save_identifier(identifier, quantised, dtype="float32")
        return exact, quantised

    def test_serve_pool_end_to_end(self, model_pair, small_bundle):
        exact, quantised = model_pair
        urls = small_bundle.odp_test.urls[:80]
        reference = score_urls(str(exact), urls, workers=2, batch_size=16)
        served = score_urls(str(quantised), urls, workers=2, batch_size=16)
        assert [row.tsv() for row in served] == [
            row.tsv() for row in reference
        ]

    def test_bulk_end_to_end(self, model_pair, small_bundle, tmp_path):
        exact, quantised = model_pair
        urls = list(small_bundle.odp_test.urls[:60])
        shard_dir = tmp_path / "shards"
        shard_dir.mkdir()
        with gzip.open(shard_dir / "part-00.txt.gz", "wt") as out:
            out.write("\n".join(urls) + "\n")
        reference = bulk.run(exact, shard_dir, tmp_path / "run64", workers=1)
        quantised_run = bulk.run(
            quantised, shard_dir, tmp_path / "run32", workers=1
        )
        assert quantised_run.rows_scored == reference.rows_scored == len(urls)

        def rows(report):
            from pathlib import Path

            (output,) = [
                Path(report.output_dir) / name
                for name in report.outputs
                if name.endswith(".tsv")
            ]
            lines = output.read_text().splitlines()
            # Drop the provenance header: it embeds the model checksum,
            # which legitimately differs between the two artifacts.
            return [line for line in lines if not line.startswith("#")]

        assert rows(quantised_run) == rows(reference)


class TestTrainDtypeFlag:
    def test_cli_trains_quantised_artifact(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "model.urlmodel"
        code = main(
            [
                "train", "--out", str(out), "--features", "words",
                "--algorithm", "NB", "--scale", "0.05",
                "--dtype", "float32",
            ]
        )
        assert code == 0
        assert ArtifactFile(out).flags == {"weights_dtype": "float32"}
        assert load_identifier(out).weights_dtype == "float32"
