"""The deterministic fault-injection harness (`repro.testing.faults`).

Every chaos test in the repo trusts this harness to fire exactly when
armed and never otherwise — so the harness itself gets the pedantic
treatment: parsing, matcher semantics, after/times windows, and the
cross-process hit counting that keeps a respawned worker from
re-firing a ``times=1`` fault.
"""

from __future__ import annotations

import errno
import os
import time

import pytest

from repro.testing import faults
from repro.testing.faults import (
    FAULT_POINTS,
    FAULTS_ENV,
    FAULTS_STATE_ENV,
    FaultConfigError,
    active_faults,
    maybe_raise,
    maybe_sleep,
    should_fire,
)


@pytest.fixture(autouse=True)
def clean_harness(monkeypatch):
    """Every test starts disarmed, with fresh per-process counters."""
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    monkeypatch.delenv(FAULTS_STATE_ENV, raising=False)
    faults._local_hits.clear()
    yield
    faults._local_hits.clear()


def arm(monkeypatch, value: str) -> None:
    monkeypatch.setenv(FAULTS_ENV, value)


class TestParsing:
    def test_disarmed_by_default(self):
        assert active_faults() == {}
        assert should_fire("worker-kill") is None

    def test_unknown_point_refused(self, monkeypatch):
        arm(monkeypatch, "rm-rf-slash:times=1")
        with pytest.raises(FaultConfigError, match="unknown fault point"):
            active_faults()

    def test_unknown_option_refused(self, monkeypatch):
        arm(monkeypatch, "worker-kill:color=red")
        with pytest.raises(FaultConfigError, match="unknown fault option"):
            active_faults()

    def test_malformed_option_refused(self, monkeypatch):
        arm(monkeypatch, "worker-kill:times")
        with pytest.raises(FaultConfigError, match="not key=value"):
            active_faults()

    def test_unparseable_value_refused(self, monkeypatch):
        arm(monkeypatch, "worker-kill:after=soon")
        with pytest.raises(FaultConfigError, match="does not parse"):
            active_faults()

    def test_multiple_points_parse(self, monkeypatch):
        arm(
            monkeypatch,
            "worker-kill:op=classify,times=2; slow-handler:seconds=0.25",
        )
        specs = active_faults()
        assert set(specs) == {"worker-kill", "slow-handler"}
        assert specs["worker-kill"].matchers == {"op": "classify"}
        assert specs["worker-kill"].times == 2
        assert specs["slow-handler"].seconds == 0.25

    def test_every_registered_point_parses_bare(self, monkeypatch):
        arm(monkeypatch, ";".join(FAULT_POINTS))
        assert set(active_faults()) == set(FAULT_POINTS)

    def test_reparse_tracks_env_changes(self, monkeypatch):
        arm(monkeypatch, "slow-handler:seconds=1")
        assert active_faults()["slow-handler"].seconds == 1.0
        arm(monkeypatch, "slow-handler:seconds=2")
        assert active_faults()["slow-handler"].seconds == 2.0


class TestFiring:
    def test_fires_once_by_default(self, monkeypatch):
        arm(monkeypatch, "torn-frame")
        assert should_fire("torn-frame") is not None
        assert should_fire("torn-frame") is None  # times=1: disarmed

    def test_after_skips_early_hits(self, monkeypatch):
        arm(monkeypatch, "torn-frame:after=3,times=2")
        fired = [should_fire("torn-frame") is not None for _ in range(6)]
        assert fired == [False, False, True, True, False, False]

    def test_times_inf_never_disarms(self, monkeypatch):
        arm(monkeypatch, "torn-frame:times=inf")
        assert all(
            should_fire("torn-frame") is not None for _ in range(20)
        )

    def test_matcher_miss_consumes_no_hits(self, monkeypatch):
        arm(monkeypatch, "worker-kill:op=classify,times=1")
        # A stream of non-matching calls must not burn the single shot.
        for _ in range(5):
            assert should_fire("worker-kill", op="ping") is None
        assert should_fire("worker-kill", op="classify") is not None
        assert should_fire("worker-kill", op="classify") is None

    def test_substring_matcher_against_text(self, monkeypatch):
        arm(monkeypatch, "predict-error:match=POISON,times=inf")
        assert should_fire("predict-error", text="http://POISON.example") \
            is not None
        assert should_fire("predict-error", text="http://fine.example") \
            is None
        assert should_fire("predict-error") is None  # no text context

    def test_points_count_independently(self, monkeypatch):
        arm(monkeypatch, "torn-frame:times=1;slow-handler:times=1")
        assert should_fire("torn-frame") is not None
        # torn-frame's hit must not consume slow-handler's budget.
        assert should_fire("slow-handler") is not None


class TestStateDirCounting:
    def test_counts_shared_across_processes(self, monkeypatch, tmp_path):
        """The state dir makes after/times fleet-wide: a second
        "process" (simulated by clearing the per-process fallback)
        continues the same sequence instead of restarting it."""
        arm(monkeypatch, "torn-frame:times=2")
        monkeypatch.setenv(FAULTS_STATE_ENV, str(tmp_path / "state"))
        assert should_fire("torn-frame") is not None
        faults._local_hits.clear()  # a respawned worker has no memory
        assert should_fire("torn-frame") is not None  # hit 2 of 2
        assert should_fire("torn-frame") is None  # budget spent fleet-wide

    def test_sequence_files_are_per_point(self, monkeypatch, tmp_path):
        arm(monkeypatch, "torn-frame;slow-handler")
        state = tmp_path / "state"
        monkeypatch.setenv(FAULTS_STATE_ENV, str(state))
        should_fire("torn-frame")
        should_fire("slow-handler")
        names = sorted(entry.name for entry in state.iterdir())
        assert names == ["slow-handler.1", "torn-frame.1"]


class TestPayloads:
    def test_maybe_sleep(self, monkeypatch):
        arm(monkeypatch, "slow-handler:seconds=0.05,times=1")
        started = time.monotonic()
        assert maybe_sleep("slow-handler") is True
        assert time.monotonic() - started >= 0.05
        assert maybe_sleep("slow-handler") is False  # disarmed

    def test_maybe_raise_is_enospc(self, monkeypatch):
        arm(monkeypatch, "commit-error:shard=s1")
        with pytest.raises(OSError) as caught:
            maybe_raise("commit-error", shard="s1")
        assert caught.value.errno == errno.ENOSPC
        maybe_raise("commit-error", shard="s1")  # disarmed: no raise

    def test_disarmed_payloads_are_noops(self):
        assert maybe_sleep("slow-handler") is False
        maybe_raise("commit-error")

    def test_hot_path_cost_is_one_env_lookup(self, monkeypatch):
        """With the harness off, should_fire must do nothing but check
        the environment — guard against accidental parsing or I/O on
        the serving hot path."""
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        calls = []
        real_get = os.environ.get
        monkeypatch.setattr(
            os.environ, "get",
            lambda key, default=None: (
                calls.append(key) or real_get(key, default)
            ),
        )
        should_fire("worker-kill", op="classify")
        assert calls == [FAULTS_ENV]
