"""Tests for synthetic page-content generation (Section 7 substrate)."""

import random

from repro.corpus.content import (
    CROSS_LANGUAGE_RATE,
    FUNCTION_WORD_RATE,
    FUNCTION_WORDS,
    contents_for,
    generate_content,
)
from repro.data.wordlists import get_lexicon
from repro.languages import LANGUAGES, Language


class TestGenerateContent:
    def test_word_count(self):
        rng = random.Random(0)
        text = generate_content("de", rng, n_words=50)
        assert len(text.split()) == 50

    def test_deterministic(self):
        first = generate_content("fr", random.Random(1), 80)
        second = generate_content("fr", random.Random(1), 80)
        assert first == second

    def test_language_vocabulary_dominates(self):
        rng = random.Random(2)
        text = generate_content("it", rng, 400)
        lexicon = get_lexicon("it")
        words = text.split()
        in_lexicon = sum(1 for word in words if word in lexicon.common_words)
        assert in_lexicon / len(words) > 0.4

    def test_collider_tokens_present(self):
        """'it' must appear in English text, 'de' in French/Spanish —
        the dilution mechanism of Section 7."""
        rng = random.Random(3)
        english = generate_content("en", rng, 2000)
        assert " it " in f" {english} "
        french = generate_content("fr", rng, 2000)
        assert " de " in f" {french} "

    def test_function_word_inventories_cover_all_languages(self):
        assert set(FUNCTION_WORDS) == set(LANGUAGES)
        for words in FUNCTION_WORDS.values():
            assert all(len(word) == 2 for word in words)

    def test_rates_are_probabilities(self):
        assert 0.0 < FUNCTION_WORD_RATE < 1.0
        assert 0.0 <= CROSS_LANGUAGE_RATE < 1.0

    def test_cross_language_leakage(self):
        rng = random.Random(4)
        text = generate_content("de", rng, 5000).split()
        other_vocab = set()
        for language in LANGUAGES:
            if language is not Language.GERMAN:
                other_vocab |= set(FUNCTION_WORDS[language])
        german_lexicon = get_lexicon("de")
        leaked = sum(
            1
            for word in text
            if word in other_vocab and word not in german_lexicon.common_words
        )
        assert leaked > 0


class TestContentsFor:
    def test_aligned_with_labels(self):
        labels = [Language.GERMAN, Language.FRENCH]
        contents = contents_for(labels, seed=1, n_words=30)
        assert len(contents) == 2
        assert all(len(text.split()) == 30 for text in contents)

    def test_deterministic(self):
        labels = [Language.ITALIAN] * 3
        assert contents_for(labels, seed=2) == contents_for(labels, seed=2)
