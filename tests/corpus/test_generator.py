"""Tests for the synthetic URL generator (the data substitution layer)."""

import random
from collections import Counter

from repro.corpus.generator import UrlCorpusGenerator
from repro.corpus.profiles import ODP_PROFILE, SER_PROFILE, WC_PROFILE
from repro.languages import LANGUAGES, Language, cctlds_for
from repro.urls.parsing import parse_url
from repro.urls.tokenizer import tokenize


def _sample(generator, language, profile, n, seed=123):
    rng = random.Random(seed)
    return [generator.generate_url(language, profile, rng) for _ in range(n)]


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        counts = {lang: 30 for lang in LANGUAGES}
        first = UrlCorpusGenerator(seed=5).generate_corpus("odp", counts)
        second = UrlCorpusGenerator(seed=5).generate_corpus("odp", counts)
        assert first.urls == second.urls
        assert first.labels == second.labels

    def test_different_seed_differs(self):
        counts = {Language.GERMAN: 50}
        first = UrlCorpusGenerator(seed=1).generate_corpus("odp", counts)
        second = UrlCorpusGenerator(seed=2).generate_corpus("odp", counts)
        assert first.urls != second.urls

    def test_seed_offsets_disjointish(self):
        generator = UrlCorpusGenerator(seed=0)
        counts = {Language.FRENCH: 50}
        a = generator.generate_corpus("odp", counts, seed_offset=1)
        b = generator.generate_corpus("odp", counts, seed_offset=2)
        assert a.urls != b.urls


class TestStructure:
    def test_counts_respected(self):
        counts = {Language.ENGLISH: 10, Language.ITALIAN: 7}
        corpus = UrlCorpusGenerator(seed=0).generate_corpus("ser", counts)
        measured = corpus.counts()
        assert measured[Language.ENGLISH] == 10
        assert measured[Language.ITALIAN] == 7
        assert measured[Language.GERMAN] == 0

    def test_urls_parse_cleanly(self):
        generator = UrlCorpusGenerator(seed=3)
        for record in _sample(generator, Language.SPANISH, ODP_PROFILE, 200):
            parsed = parse_url(record.url)
            assert record.url.startswith("http://")
            assert parsed.host, record.url
            assert parsed.tld, record.url

    def test_archetype_recorded(self):
        generator = UrlCorpusGenerator(seed=3)
        archetypes = {
            r.archetype
            for r in _sample(generator, Language.FRENCH, ODP_PROFILE, 500)
        }
        assert archetypes <= {
            "cctld", "generic", "english_looking", "shared", "other_tld",
        }
        assert "cctld" in archetypes and "generic" in archetypes


class TestCalibration:
    """Statistical properties the paper measures, within tolerance."""

    def test_cctld_rate_matches_profile(self):
        generator = UrlCorpusGenerator(seed=7)
        for language, expected in ODP_PROFILE.cctld_rate.items():
            records = _sample(generator, language, ODP_PROFILE, 1500)
            cctlds = set(cctlds_for(language))
            rate = sum(
                1 for r in records if parse_url(r.url).tld in cctlds
            ) / len(records)
            assert abs(rate - expected) < 0.05, (language, rate, expected)

    def test_italian_it_token_majority(self):
        # Section 7: "the token it ... appears in 67% of their URLs".
        generator = UrlCorpusGenerator(seed=7)
        records = _sample(generator, Language.ITALIAN, ODP_PROFILE, 1000)
        rate = sum(1 for r in records if "it" in tokenize(r.url)) / len(records)
        assert 0.5 < rate < 0.85

    def test_german_hyphens_exceed_english(self):
        # Section 3.1: "hyphens occur about five times more often in
        # German URLs than in English URLs".
        generator = UrlCorpusGenerator(seed=7)
        german = _sample(generator, Language.GERMAN, ODP_PROFILE, 1500, seed=1)
        english = _sample(generator, Language.ENGLISH, ODP_PROFILE, 1500, seed=2)
        german_rate = sum(r.url.count("-") for r in german) / len(german)
        english_rate = sum(r.url.count("-") for r in english) / len(english)
        assert german_rate > 2.5 * english_rate

    def test_english_looking_only_non_english(self):
        generator = UrlCorpusGenerator(seed=7)
        english = _sample(generator, Language.ENGLISH, WC_PROFILE, 500)
        assert all(r.archetype != "english_looking" for r in english)

    def test_ser_cleaner_than_odp(self):
        """SER URLs carry language words more often than ODP URLs."""
        from repro.data.wordlists import get_lexicon

        generator = UrlCorpusGenerator(seed=7)
        lexicon = get_lexicon("fr")

        def signal_rate(profile):
            records = _sample(generator, Language.FRENCH, profile, 800)
            hits = sum(
                1
                for r in records
                if any(t in lexicon.common_words for t in tokenize(r.url))
            )
            return hits / len(records)

        assert signal_rate(SER_PROFILE) > signal_rate(ODP_PROFILE)

    def test_domain_pools_shared_across_profiles(self):
        """One generator serves all three collections from shared pools,
        so crawl domains overlap with ODP training domains (Figure 3)."""
        generator = UrlCorpusGenerator(seed=7)
        odp = generator.generate_corpus("odp", {lang: 400 for lang in LANGUAGES})
        wc = generator.generate_corpus("wc", {lang: 150 for lang in LANGUAGES})
        overlap = len(odp.domains() & wc.domains())
        assert overlap > 20

    def test_shared_hosts_carry_multiple_languages(self):
        generator = UrlCorpusGenerator(seed=7)
        corpus = generator.generate_corpus(
            "odp", {lang: 800 for lang in LANGUAGES}
        )
        by_domain: dict[str, set] = {}
        for record in corpus:
            by_domain.setdefault(record.domain, set()).add(record.language)
        multi = sum(1 for langs in by_domain.values() if len(langs) > 1)
        assert multi > 10

    def test_label_is_requested_language(self):
        generator = UrlCorpusGenerator(seed=9)
        records = _sample(generator, Language.GERMAN, SER_PROFILE, 50)
        assert all(r.language is Language.GERMAN for r in records)

    def test_oov_pool_words_not_in_dictionary(self):
        from repro.data.wordlists import get_lexicon

        generator = UrlCorpusGenerator(seed=7)
        for language in LANGUAGES:
            pool = generator._oov_pools[language]
            lexicon = get_lexicon(language)
            assert len(pool) == 300
            assert all(word not in lexicon.common_words for word in pool)
