"""Tests for corpus records, splitting and balanced sampling."""

import pytest

from repro.corpus.records import (
    Corpus,
    LabeledUrl,
    balanced_binary_indices,
    balanced_binary_labels,
    train_test_split,
)
from repro.languages import Language
from tests.conftest import make_corpus


class TestLabeledUrl:
    def test_domain(self):
        record = LabeledUrl("http://ltaa.epfl.ch/x", Language.FRENCH)
        assert record.domain == "epfl.ch"

    def test_frozen(self):
        record = LabeledUrl("http://a.de/", Language.GERMAN)
        with pytest.raises(AttributeError):
            record.url = "http://b.de/"


class TestCorpus:
    def test_accessors(self):
        corpus = make_corpus({"en": 2, "de": 3})
        assert len(corpus) == 5
        assert len(corpus.urls) == 5
        assert corpus.labels.count(Language.GERMAN) == 3

    def test_of_language(self):
        corpus = make_corpus({"en": 2, "de": 3})
        german = corpus.of_language("de")
        assert len(german) == 3
        assert all(r.language is Language.GERMAN for r in german)

    def test_counts(self):
        counts = make_corpus({"en": 2, "it": 1}).counts()
        assert counts[Language.ENGLISH] == 2
        assert counts[Language.ITALIAN] == 1
        assert counts[Language.FRENCH] == 0

    def test_domains(self):
        corpus = make_corpus({"de": 3})
        assert corpus.domains() == {"blumen-haus.de"}

    def test_filter(self):
        corpus = make_corpus({"en": 3})
        filtered = corpus.filter(lambda r: r.url.endswith("0.html"))
        assert len(filtered) == 1

    def test_iteration_and_indexing(self):
        corpus = make_corpus({"fr": 2})
        assert corpus[0].language is Language.FRENCH
        assert len(list(corpus)) == 2


class TestSubsample:
    def test_fraction_one_copies(self):
        corpus = make_corpus({"en": 5})
        sub = corpus.subsample(1.0)
        assert len(sub) == 5
        assert sub.records is not corpus.records

    def test_deterministic(self):
        corpus = make_corpus({"en": 50, "de": 50})
        first = corpus.subsample(0.3, seed=5)
        second = corpus.subsample(0.3, seed=5)
        assert first.urls == second.urls

    def test_keeps_every_language(self):
        corpus = make_corpus({"en": 200, "it": 2})
        sub = corpus.subsample(0.01, seed=1)
        assert any(r.language is Language.ITALIAN for r in sub)

    def test_rough_size(self):
        corpus = make_corpus({"en": 500, "de": 500})
        sub = corpus.subsample(0.2, seed=0)
        assert 120 <= len(sub) <= 280

    def test_invalid_fraction(self):
        corpus = make_corpus({"en": 5})
        with pytest.raises(ValueError):
            corpus.subsample(0.0)
        with pytest.raises(ValueError):
            corpus.subsample(1.5)


class TestTrainTestSplit:
    def test_partition(self):
        corpus = make_corpus({"en": 50, "de": 50})
        train, test = train_test_split(corpus, 0.2, seed=3)
        assert len(train) + len(test) == 100
        assert set(train.urls).isdisjoint(test.urls)

    def test_test_fraction(self):
        corpus = make_corpus({"en": 100})
        _, test = train_test_split(corpus, 0.25, seed=0)
        assert len(test) == 25

    def test_deterministic(self):
        corpus = make_corpus({"en": 40, "fr": 40})
        split1 = train_test_split(corpus, 0.3, seed=9)
        split2 = train_test_split(corpus, 0.3, seed=9)
        assert split1[1].urls == split2[1].urls

    def test_invalid_fraction(self):
        corpus = make_corpus({"en": 5})
        with pytest.raises(ValueError):
            train_test_split(corpus, 0.0)


class TestBalancedBinary:
    def test_balanced_counts(self):
        corpus = make_corpus({"en": 10, "de": 30, "fr": 30})
        indices, labels = balanced_binary_indices(corpus, "en", seed=0)
        assert labels.count(True) == 10
        assert labels.count(False) == 10

    def test_all_positives_kept(self):
        corpus = make_corpus({"en": 10, "de": 30})
        indices, labels = balanced_binary_indices(corpus, "en", seed=0)
        positive_indices = {i for i, l in zip(indices, labels) if l}
        expected = {
            i for i, r in enumerate(corpus.records)
            if r.language is Language.ENGLISH
        }
        assert positive_indices == expected

    def test_labels_match_indices(self):
        corpus = make_corpus({"en": 5, "de": 5, "it": 5})
        indices, labels = balanced_binary_indices(corpus, "it", seed=2)
        for index, label in zip(indices, labels):
            assert (corpus.records[index].language is Language.ITALIAN) == label

    def test_shuffled(self):
        corpus = make_corpus({"en": 50, "de": 50})
        _, labels = balanced_binary_indices(corpus, "en", seed=1)
        assert labels != sorted(labels, reverse=True)  # not all-pos-then-neg

    def test_no_positives_raises(self):
        corpus = make_corpus({"en": 5})
        with pytest.raises(ValueError, match="no URLs"):
            balanced_binary_indices(corpus, "it")

    def test_url_wrapper(self):
        corpus = make_corpus({"en": 4, "de": 8})
        urls, labels = balanced_binary_labels(corpus, "en", seed=0)
        assert len(urls) == len(labels) == 8
        assert all(isinstance(u, str) for u in urls)
