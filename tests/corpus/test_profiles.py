"""Tests for dataset generation profiles."""

from repro.corpus.profiles import (
    ODP_PROFILE,
    PROFILES,
    SER_PROFILE,
    WC_LANGUAGE_COUNTS,
    WC_PROFILE,
)
from repro.languages import LANGUAGES, Language


class TestProfiles:
    def test_registry(self):
        assert PROFILES["odp"] is ODP_PROFILE
        assert PROFILES["ser"] is SER_PROFILE
        assert PROFILES["wc"] is WC_PROFILE

    def test_all_languages_covered(self):
        for profile in PROFILES.values():
            assert set(profile.cctld_rate) == set(LANGUAGES)
            assert set(profile.english_looking_rate) == set(LANGUAGES)

    def test_rates_are_probabilities(self):
        for profile in PROFILES.values():
            for rate in profile.cctld_rate.values():
                assert 0.0 <= rate <= 1.0
            for rate in profile.english_looking_rate.values():
                assert 0.0 <= rate <= 1.0
            assert 0.0 <= profile.shared_domain_rate <= 1.0
            assert 0.0 <= profile.fresh_domain_rate <= 1.0

    def test_archetype_mass_feasible(self):
        # shared/english-looking rates saturate against the remaining
        # probability mass, but ccTLD + unassigned-TLD must leave room.
        for profile in PROFILES.values():
            for language in LANGUAGES:
                total = profile.cctld_rate[language] + profile.other_tld_rate
                assert total < 1.0, (profile.name, language)

    def test_cctld_rates_match_table4_recalls(self):
        """The profiles encode Table 4's recall column."""
        assert ODP_PROFILE.cctld_rate[Language.GERMAN] == 0.83
        assert WC_PROFILE.cctld_rate[Language.SPANISH] == 0.11
        assert SER_PROFILE.cctld_rate[Language.ITALIAN] == 0.75

    def test_english_never_english_looking(self):
        for profile in PROFILES.values():
            assert profile.english_looking_rate[Language.ENGLISH] == 0.0

    def test_ser_is_cleanest(self):
        for language in LANGUAGES:
            assert (
                SER_PROFILE.english_looking_rate[language]
                <= ODP_PROFILE.english_looking_rate[language]
            )
        assert SER_PROFILE.path_language_rate > ODP_PROFILE.path_language_rate

    def test_wc_language_counts_match_table1(self):
        assert WC_LANGUAGE_COUNTS[Language.ENGLISH] == 1082
        assert WC_LANGUAGE_COUNTS[Language.GERMAN] == 81
        assert WC_LANGUAGE_COUNTS[Language.FRENCH] == 57
        assert WC_LANGUAGE_COUNTS[Language.SPANISH] == 19
        assert WC_LANGUAGE_COUNTS[Language.ITALIAN] == 21
        assert sum(WC_LANGUAGE_COUNTS.values()) == 1260
