"""Test package."""
