"""Compare all algorithm/feature-set combinations, then search for the
best per-language classifier combination (Sections 5 and 5.6).

    python examples/compare_algorithms.py

Produces a miniature Table 7 (average F per combination and test set)
and then runs the validation-driven combination search that underlies
Table 9.
"""

from repro import LanguageIdentifier, build_datasets
from repro.core import search_best_combination
from repro.evaluation import average_f
from repro.languages import LANGUAGES

COMBINATIONS = (
    ("NB", "words"), ("RE", "words"), ("ME", "words"),
    ("NB", "trigrams"), ("RE", "trigrams"),
    ("NB", "custom"), ("DT", "custom"),
    ("ccTLD", None), ("ccTLD+", None),
)


def main() -> None:
    data = build_datasets(seed=1, scale=0.35)
    train = data.combined_train

    fitted = {}
    print(f"{'combo':<14}" + "".join(f"{name:>8}" for name in data.test_sets))
    for algorithm, feature_set in COMBINATIONS:
        if feature_set is None:
            identifier = LanguageIdentifier(algorithm=algorithm)
            label = algorithm
        else:
            identifier = LanguageIdentifier(feature_set, algorithm).fit(train)
            fitted[(algorithm, feature_set)] = identifier
            label = f"{algorithm}/{feature_set}"
        row = [
            average_f(list(identifier.evaluate(test).values()))
            for test in data.test_sets.values()
        ]
        print(f"{label:<14}" + "".join(f"{value:>8.3f}" for value in row))

    # Combination search (the procedure behind Table 9), validated on ODP.
    print("\nsearching per-language combinations on the ODP test set...")
    specs, combined = search_best_combination(fitted, data.odp_test)
    for language in LANGUAGES:
        spec = specs[language]
        print(
            f"  {language.display_name:<8} "
            f"{spec.describe() if spec else 'best single classifier'}"
        )
    for name, test in data.test_sets.items():
        merged = average_f(list(combined.evaluate(test).values()))
        print(f"combined avg F on {name}: {merged:.3f}")


if __name__ == "__main__":
    main()
