"""The paper's browser scenario: language hints while hovering links.

    python examples/browser_hints.py

Section 1 envisions "a personalized web browser, which automatically
opens foreign language URLs in a split window, with a machine
translation on one side, or which at least shows certain language
related icons, when the user is hovering with the mouse over a URL."

This example implements that hint engine: given the user's preferred
language and a page full of links, annotate each link before anything
is downloaded.
"""

from repro import LanguageIdentifier, build_datasets
from repro.languages import Language

FLAGS = {
    Language.ENGLISH: "[EN]",
    Language.GERMAN: "[DE]",
    Language.FRENCH: "[FR]",
    Language.SPANISH: "[ES]",
    Language.ITALIAN: "[IT]",
}


def hint(identifier: LanguageIdentifier, url: str, preferred: Language) -> str:
    """The hint a browser would render next to a link."""
    scores = identifier.scores(url)
    best = max(scores, key=scores.get)
    if scores[best] <= 0:
        return "(language unknown)"
    if best is preferred:
        return f"{FLAGS[best]}"
    return f"{FLAGS[best]} foreign language - offer translation"


def main() -> None:
    data = build_datasets(seed=4, scale=0.35)
    identifier = LanguageIdentifier("words", "NB").fit(data.combined_train)

    preferred = Language.ENGLISH
    links = [
        "http://www.weather-news.com/forecast/boston",
        "http://www.giornale-sport.it/calcio/seriea/risultati",
        "http://forum.mamboserver.com/archive/t-7062.html",  # paper's German lookalike
        "http://www.recettes-cuisine.fr/desserts/tarte",
        "http://de.wikipedia.org/wiki/Lausanne",
        "http://www.noticias-economia.es/mercados/bolsa",
        "http://home.arcor.de/peter/modellbau.html",
        "http://www.priceminister.com/navigation/category/126541",  # French lookalike
    ]

    print(f"user's preferred language: {preferred.display_name}\n")
    for url in links:
        print(f"  {hint(identifier, url, preferred):<42} {url}")

    print(
        "\nNote the two 'lookalike' URLs from the paper (mamboserver/"
        "priceminister): they read as English to a person, and only host "
        "memorisation from training data can place them — mamboserver.com "
        "is a genuinely multi-language host, so its hint stays uncertain."
    )


if __name__ == "__main__":
    main()
