"""The paper's motivating application: a language-quota crawler.

    python examples/crawler_quota.py

A crawler for a German-language search engine (the paper's fireball.de
scenario) must download 100 German pages from a frontier of uncrawled,
mostly non-German URLs.  Three download policies are compared:

* download everything (wastes bandwidth on non-German pages),
* trust the ccTLD (never wrong, but misses most German pages off .de),
* ask the URL-based classifier before spending a download.
"""

from repro import LanguageIdentifier, build_datasets
from repro.crawler import compare_policies
from repro.languages import Language


def main() -> None:
    data = build_datasets(seed=3, scale=0.4)

    identifier = LanguageIdentifier(feature_set="words", algorithm="NB")
    identifier.fit(data.combined_train)

    # The uncrawled frontier: the ODP test set (balanced across the five
    # languages, so 80% of downloads would be wasted by a naive crawler).
    uncrawled = data.odp_test
    quota = 100

    print(
        f"frontier: {len(uncrawled)} uncrawled URLs, "
        f"quota: {quota} German pages\n"
    )
    comparison = compare_policies(
        uncrawled, Language.GERMAN, quota, identifier
    )
    print(comparison.format())

    saved = (
        comparison.baseline.total_downloads
        - comparison.classifier.total_downloads
    )
    print(
        f"\nthe URL classifier saved {saved} downloads "
        f"({saved / max(comparison.baseline.total_downloads, 1):.0%} of the "
        "baseline's bandwidth),"
    )
    print(
        f"missing {comparison.classifier.missed_targets} German pages it "
        "skipped by mistake."
    )
    print(
        f"ccTLD alone filled the quota: {comparison.cctld.quota_filled} "
        "(it only sees .de/.at hosts)"
    )


if __name__ == "__main__":
    main()
