"""Quickstart: train, save a model artifact, open it back, classify.

Runs in a few seconds:

    python examples/quickstart.py

Trains the paper's best configuration (Naive Bayes over word features,
one binary classifier per language, balanced negative sampling) on the
synthetic ODP+SER corpus, persists it through the artifact store
(:mod:`repro.store`), and evaluates the *deployed* model the way the
paper does — the exact train -> save -> serve flow of a crawler
deployment.  Inference goes through the public facade:
``repro.api.open_model("store://<name>")`` resolves the stored
artifact (mmap-backed, zero-copy) to the same ``Predictor`` surface
every other backend answers.  See ``examples/serve_workers.py`` for
the multi-process serving side.
"""

import tempfile
from pathlib import Path

from repro import LanguageIdentifier, ModelStore, build_datasets, open_model
from repro.evaluation import average_f, metrics_table
from repro.languages import LANGUAGES

def main() -> None:
    # 1. Build the three collections (scaled-down stand-ins for Table 1).
    data = build_datasets(seed=0, scale=0.4)
    print(
        f"training URLs: {len(data.combined_train)}  "
        f"(ODP {len(data.odp_train)} + SER {len(data.ser_train)})"
    )

    # 2. Train the paper's best single configuration: NB + word features.
    identifier = LanguageIdentifier(feature_set="words", algorithm="NB")
    identifier.fit(data.combined_train)

    # 3. Persist through the model store and serve from the loaded copy.
    #    The artifact is a mmap-able binary: loading parses only the
    #    header + vocabulary, and N processes share one weight matrix.
    store = ModelStore(Path(tempfile.mkdtemp()) / "models")
    handle = store.save(identifier)
    print(
        f"\nsaved {handle.label} -> {handle.path.name} "
        f"({handle.nbytes} bytes, sha256 {handle.checksum[:12]}...)"
    )
    # 4. Open the deployed model through the facade — the handle names
    #    *where the model lives*, not how to load it, so swapping in a
    #    daemon ("repro://...") or a plain path later changes nothing
    #    downstream.
    served = open_model(f"store://{handle.name}", store_root=store.root)
    info = served.capabilities().model
    print(f"opened store://{handle.name}: {info.name} "
          f"({info.backend} backend, trained on corpus "
          f"{(info.train_corpus or '?')[:12]}...)")

    # 5. Classify some URLs with the deployed model (one batch pass).
    urls = [
        "http://www.zeitung-aktuell.de/wirtschaft/artikel.html",
        "http://www.recherche-emploi.fr/offres/paris",
        "http://www.corriere-sport.it/calcio/risultati",
        "http://www.noticias-hoy.es/madrid/cultura",
        "http://www.weather-forecast.com/new-york/today",
        "http://www.wasserbett-test.com/impressum/kontakt.html",  # paper's example
    ]
    print("\nclassifications (from the deployed artifact):")
    for prediction in served.predict(urls):
        languages = sorted(l.value for l in prediction.positives)
        best = prediction.best
        print(f"  {prediction.url}")
        print(f"    binary yes: {languages or ['-']}, best: "
              f"{best.display_name if best else 'none'}")

    # 6. Evaluate with the paper's measures (P/R/p(-|-)/F) per language.
    for name, test in data.test_sets.items():
        metrics = served.evaluate(test)
        rows = [(lang.display_name, metrics[lang]) for lang in LANGUAGES]
        print()
        print(metrics_table(rows, title=f"{name} test set"))
    print(
        "\n(the paper's NB/words averages: ODP .88, SER .96, WC .90)"
    )


if __name__ == "__main__":
    main()
