"""Quickstart: train a URL language identifier and classify URLs.

Runs in a few seconds:

    python examples/quickstart.py

Trains the paper's best configuration (Naive Bayes over word features,
one binary classifier per language, balanced negative sampling) on the
synthetic ODP+SER corpus and evaluates it the way the paper does.
"""

from repro import LanguageIdentifier, build_datasets
from repro.evaluation import average_f, metrics_table
from repro.languages import LANGUAGES

def main() -> None:
    # 1. Build the three collections (scaled-down stand-ins for Table 1).
    data = build_datasets(seed=0, scale=0.4)
    print(
        f"training URLs: {len(data.combined_train)}  "
        f"(ODP {len(data.odp_train)} + SER {len(data.ser_train)})"
    )

    # 2. Train the paper's best single configuration: NB + word features.
    identifier = LanguageIdentifier(feature_set="words", algorithm="NB")
    identifier.fit(data.combined_train)

    # 3. Classify some URLs.
    urls = [
        "http://www.zeitung-aktuell.de/wirtschaft/artikel.html",
        "http://www.recherche-emploi.fr/offres/paris",
        "http://www.corriere-sport.it/calcio/risultati",
        "http://www.noticias-hoy.es/madrid/cultura",
        "http://www.weather-forecast.com/new-york/today",
        "http://www.wasserbett-test.com/impressum/kontakt.html",  # paper's example
    ]
    print("\nclassifications:")
    for url in urls:
        languages = sorted(l.value for l in identifier.predict_languages(url))
        best = identifier.classify(url)
        print(f"  {url}")
        print(f"    binary yes: {languages or ['-']}, best: "
              f"{best.display_name if best else 'none'}")

    # 4. Evaluate with the paper's measures (P/R/p(-|-)/F) per language.
    for name, test in data.test_sets.items():
        metrics = identifier.evaluate(test)
        rows = [(lang.display_name, metrics[lang]) for lang in LANGUAGES]
        print()
        print(metrics_table(rows, title=f"{name} test set"))
    print(
        "\n(the paper's NB/words averages: ODP .88, SER .96, WC .90)"
    )


if __name__ == "__main__":
    main()
