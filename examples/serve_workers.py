"""Multi-process URL triage from one memory-mapped model artifact.

Runs in well under a minute:

    python examples/serve_workers.py

Trains NB/words once, saves it as a model artifact, then scores the
same URL stream with 1 and then 4 worker processes — every worker
``mmap``s the *same* file, so the weight matrix exists once in physical
memory no matter how many workers serve from it.  Results are asserted
identical across worker counts before any throughput is reported.
"""

import tempfile
import time
from pathlib import Path

from repro import LanguageIdentifier, build_datasets, save_identifier
from repro.store import score_urls


def main() -> None:
    # 1. Train the paper's best configuration and persist it.
    data = build_datasets(seed=0, scale=0.4)
    identifier = LanguageIdentifier(feature_set="words", algorithm="NB")
    identifier.fit(data.combined_train)
    model_path = Path(tempfile.mkdtemp()) / "nb-words.urlmodel"
    save_identifier(identifier, model_path)
    print(f"artifact: {model_path.name} ({model_path.stat().st_size} bytes)")

    # 2. A URL stream to triage (repeat the test sets to get volume).
    urls = []
    for _ in range(20):
        for test in data.test_sets.values():
            urls.extend(test.urls)
    print(f"scoring {len(urls)} URLs...")

    # 3. Same stream, increasing worker counts, one shared artifact.
    reference = None
    for workers in (1, 2, 4):
        start = time.perf_counter()
        results = score_urls(model_path, urls, workers=workers, batch_size=2048)
        elapsed = time.perf_counter() - start
        if reference is None:
            reference = results
        assert results == reference, "workers must agree exactly"
        labelled = sum(1 for result in results if result.best is not None)
        print(
            f"  workers={workers}: {elapsed:6.2f}s "
            f"({len(urls) / elapsed:9.0f} URLs/s, {labelled} labelled)"
        )
    print(
        "\n(on this tiny synthetic stream the single process wins — scoring"
        "\n is one matmul, so fork + result IPC dominate.  The point of the"
        "\n artifact is what mmap sharing buys a real fleet: N workers, one"
        "\n physical copy of the weight matrix, and O(header) startup each.)"
    )

    # 4. A few example rows, CLI-style.
    print("\nsample rows (best, binary-yes, url):")
    for result in reference[:5]:
        print("  " + result.tsv())


if __name__ == "__main__":
    main()
