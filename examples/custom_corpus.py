"""Train on your own labelled URLs and inspect what the models learn.

    python examples/custom_corpus.py

Demonstrates the library on a hand-written corpus (no synthetic data):
builds a Corpus from (url, language) pairs, fits the trained dictionary,
inspects Naive Bayes token weights, and prints an interpretable decision
tree — the workflow a practitioner would use with their own crawl logs.
"""

from repro import Corpus, LabeledUrl, LanguageIdentifier, Language
from repro.features import CustomFeatureExtractor, TrainedDictionary
from repro.features.custom import describe_feature

#: A miniature hand-labelled corpus (in practice: your crawl log).
RAW = [
    # German
    ("http://home.arcor.de/willi/fotos.html", "de"),
    ("http://www.blumen-schmidt.de/angebote/rosen.html", "de"),
    ("http://www.ferienwohnung-ostsee.de/preise.html", "de"),
    ("http://www.musikverein-lindau.de/termine/konzert.html", "de"),
    ("http://www.zeitung.de/nachrichten/wirtschaft", "de"),
    ("http://www.gasthaus-alpenblick.at/zimmer.html", "de"),
    ("http://www.werkstatt-meier.de/reparatur/auto", "de"),
    ("http://www.kochen-backen.de/rezepte/kuchen", "de"),
    # French
    ("http://www.boulangerie-martin.fr/produits.html", "fr"),
    ("http://www.recherche-emploi.fr/offres/lyon", "fr"),
    ("http://www.chateau-loire.fr/visites/horaires.html", "fr"),
    ("http://www.ecole-primaire.fr/classes/calendrier", "fr"),
    ("http://www.cuisine-facile.fr/recettes/desserts", "fr"),
    ("http://www.mairie-bordeaux.fr/services", "fr"),
    ("http://perso.wanadoo.fr/famille-dupont/photos", "fr"),
    ("http://www.librairie-ancienne.fr/livres/histoire", "fr"),
    # English
    ("http://www.weather-forecast.com/london/today", "en"),
    ("http://www.cheapflights.com/deals/newyork", "en"),
    ("http://www.gardening-tips.co.uk/roses/spring", "en"),
    ("http://www.localnews.com/sports/results", "en"),
    ("http://www.recipes-kitchen.com/dinner/chicken", "en"),
    ("http://www.smallbusiness.gov/advice/startup", "en"),
    ("http://www.hiking-trails.com/colorado/maps", "en"),
    ("http://www.bookstore-online.com/fiction/bestsellers", "en"),
    # Spanish
    ("http://www.noticias-madrid.es/cultura/teatro", "es"),
    ("http://www.recetas-cocina.es/postres/flan", "es"),
    ("http://www.turismo-andalucia.es/playas/guia", "es"),
    ("http://www.escuela-idiomas.es/cursos/precios", "es"),
    ("http://galeon.com/mipagina/fotos", "es"),
    ("http://www.futbol-resultados.es/liga/clasificacion", "es"),
    ("http://www.mercado-central.es/productos/frutas", "es"),
    ("http://www.ayuntamiento-sevilla.es/servicios", "es"),
    # Italian
    ("http://www.ristorante-roma.it/menu/prezzi", "it"),
    ("http://www.agriturismo-toscana.it/camere/prenotazione", "it"),
    ("http://www.calcio-notizie.it/risultati/classifica", "it"),
    ("http://www.ricette-cucina.it/dolci/tiramisu", "it"),
    ("http://www.comune-firenze.it/servizi/orari", "it"),
    ("http://utenti.tripod.it/famiglia/foto", "it"),
    ("http://www.libreria-antica.it/libri/storia", "it"),
    ("http://www.vacanze-mare.it/spiagge/guida", "it"),
]


def main() -> None:
    corpus = Corpus(
        records=[
            LabeledUrl(url, Language.coerce(code)) for url, code in RAW
        ],
        name="hand-labelled",
    )
    print(f"corpus: {len(corpus)} URLs, {corpus.counts()}")

    # 1. What does the trained dictionary learn?  (Section 3.1's rule;
    # thresholds relaxed for this tiny corpus.)
    trained = TrainedDictionary(min_document_count=2).fit(
        corpus.urls, corpus.labels
    )
    print("\ntrained dictionary (tokens unique to one language):")
    for language in (Language.GERMAN, Language.SPANISH):
        words = sorted(trained.words[language])[:8]
        print(f"  {language.display_name}: {', '.join(words)}")

    # 2. Naive Bayes over words: inspect the strongest token weights.
    nb = LanguageIdentifier("words", "NB", seed=0).fit(corpus)
    german_nb = nb.classifiers[Language.GERMAN]
    print("\nmost German-indicative tokens (NB log-odds):")
    scored = sorted(
        ((german_nb.feature_log_odds(f"w:{token}"), token)
         for token in ("de", "angebote", "recherche", "com", "termine")),
        reverse=True,
    )
    for weight, token in scored:
        print(f"  {token:<12} {weight:+.2f}")

    # 3. An interpretable decision tree (Figure 1 style) on the custom
    # features.
    extractor = CustomFeatureExtractor(
        trained_dictionary=TrainedDictionary(min_document_count=2)
    )
    dt = LanguageIdentifier(
        "custom", "DT", seed=0,
        algorithm_kwargs={"max_depth": 3, "min_samples_leaf": 2},
        extractor_kwargs={
            "trained_dictionary": TrainedDictionary(min_document_count=2)
        },
    ).fit(corpus)
    tree = dt.classifiers[Language.GERMAN]
    print("\nGerman decision tree (custom features):")
    print(tree.format_tree(describe=describe_feature))

    # 4. Classify new, unseen URLs.
    print("\nclassifying unseen URLs:")
    for url in (
        "http://www.blumen-meier.de/rosen/angebote.html",
        "http://www.recherche-livres.fr/histoire",
        "http://www.trailmaps-online.com/hiking",
    ):
        best = nb.classify(url)
        print(f"  {url} -> {best.display_name if best else 'unknown'}")


if __name__ == "__main__":
    main()
