"""The long-lived serving daemon, end to end, from Python.

Runs in well under a minute:

    python examples/serve_daemon.py

Trains two models, starts a daemon on the first, classifies through
both the socket client and a ``repro://`` handle resolved by the
public facade (``repro.api.open_model``), hot-reloads to the second
model under live traffic, and stops the daemon — the same arc
``docs/serving.md`` walks through with the CLI.
"""

import tempfile
import time
from pathlib import Path

from repro import LanguageIdentifier, build_datasets, open_model, save_identifier
from repro.store import start_daemon, stop_daemon
from repro.store.client import DaemonClient


def main() -> None:
    # 1. Two fitted models: the one we deploy, and its replacement.
    data = build_datasets(seed=0, scale=0.2)
    first = LanguageIdentifier(feature_set="words", algorithm="NB")
    first.fit(data.combined_train)
    second = LanguageIdentifier(feature_set="words", algorithm="RE")
    second.fit(data.combined_train)

    base = Path(tempfile.mkdtemp())
    model_path = base / "live.urlmodel"
    socket_path = base / "live.sock"
    save_identifier(first, model_path)

    # 2. Start the daemon: pre-forked workers over one mapped artifact.
    pid = start_daemon(model_path, socket_path, workers=2)
    print(f"daemon {pid} on {socket_path.name}")
    try:
        with DaemonClient(socket_path) as client:
            status = client.status()
            print(
                f"serving {status['model']['name']} "
                f"(trained on corpus "
                f"{status['model']['rollout']['train_corpus'][:12]}…)"
            )

            # 3. Classify through the client; workers keep their caches
            # warm between requests, so repeat batches get faster.
            urls = data.odp_test.urls[:500]
            for round_number in (1, 2):
                start = time.perf_counter()
                rows = client.classify(urls)
                elapsed = time.perf_counter() - start
                print(
                    f"  round {round_number}: {len(rows)} URLs in "
                    f"{elapsed * 1000:6.1f} ms"
                )

            # 4. The repro:// handle through the facade: a full
            # Predictor with no weights in this process (the crawler
            # and the CLI accept the same handle).
            with open_model(f"repro://{socket_path}") as remote:
                capabilities = remote.capabilities()
                assert capabilities.remote and not capabilities.compiled
                assert remote.decisions(urls) == first.decisions(urls)
                print(f"repro:// handle answers as {remote.name} "
                      f"(backend {capabilities.model.backend}), verified")

            # 5. Hot reload: overwrite the artifact, SIGHUP, and wait
            # for the generation handover — the socket never closes.
            save_identifier(second, model_path)
            client.reload()
            while client.status()["model"]["name"] != second.name:
                time.sleep(0.1)
            assert client.decisions(urls) == second.decisions(urls)
            print(f"hot-reloaded to {second.name} under live traffic")
    finally:
        stop_daemon(socket_path)
        print("daemon stopped, socket removed")


if __name__ == "__main__":
    main()
